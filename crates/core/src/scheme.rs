//! The FTL scheme interface shared by baseline FTL, MRSM and Across-FTL,
//! plus helpers common to every page-mapping scheme (read-modify-write
//! normal page programming, oracle stamp assembly).

use aftl_flash::{
    Allocator, FlashArray, Geometry, Nanos, PageKind, Ppn, Result, SectorStamp, StreamId,
};
use serde::{Deserialize, Serialize};

use crate::counters::SchemeCounters;
use crate::gc::{GcReport, GcTuning};
use crate::learned::{LearnedConfig, LearnedStats};
use crate::mapping::cache::CacheStats;
use crate::mapping::engine::{MapEngineStats, PipelineConfig};
use crate::mapping::pmt::PageMapTable;
use crate::obs::SchemeEvent;
use crate::recover::{lost_stamps_of, program_relocating, read_with_retry, PageRead, LOST_VERSION};
use crate::request::{HostRequest, PageExtent};

/// Which scheme a trait object implements (for reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Conventional dynamic page-level mapping FTL.
    Baseline,
    /// Multi-resolution sub-page mapping comparator (Chen et al., TCAD 2020).
    Mrsm,
    /// The paper's Across-FTL: re-aligns across-page requests.
    Across,
    /// Learned piecewise-linear LPN→PPN mapping with predict-then-verify
    /// reads and PMT fallback (PR 9, beyond the paper's comparison set).
    Learned,
}

impl SchemeKind {
    /// The paper's three schemes, in the order its figures list them.
    /// The learned comparator is not part of the paper's own comparison
    /// set, so figure reproductions iterate this; experiments that want
    /// the fourth scheme use [`SchemeKind::WITH_LEARNED`].
    pub const ALL: [SchemeKind; 3] = [SchemeKind::Baseline, SchemeKind::Mrsm, SchemeKind::Across];

    /// All four schemes including the learned comparator.
    pub const WITH_LEARNED: [SchemeKind; 4] = [
        SchemeKind::Baseline,
        SchemeKind::Mrsm,
        SchemeKind::Across,
        SchemeKind::Learned,
    ];

    /// Display name used in tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Baseline => "FTL",
            SchemeKind::Mrsm => "MRSM",
            SchemeKind::Across => "Across-FTL",
            SchemeKind::Learned => "Learned-FTL",
        }
    }
}

/// Mutable view of the device an FTL operates on for one call.
pub struct FtlEnv<'a> {
    /// The NAND array (timing model, page states, optional content).
    pub array: &'a mut FlashArray,
    /// Write-point allocator handing out physical pages per stream.
    pub alloc: &'a mut Allocator,
    /// Simulation time the request was dispatched.
    pub now_ns: Nanos,
}

impl FtlEnv<'_> {
    /// The device geometry.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        self.array.geometry()
    }

    /// Sectors per page.
    #[inline]
    pub fn spp(&self) -> u32 {
        self.geometry().sectors_per_page()
    }

    /// Physical page size in bytes.
    #[inline]
    pub fn page_bytes(&self) -> u32 {
        self.geometry().page_bytes
    }

    /// Convert a sector count into a byte count.
    #[inline]
    pub fn sectors_to_bytes(&self, sectors: u32) -> u32 {
        sectors * self.geometry().sector_bytes
    }
}

/// What a read actually returned, for the correctness oracle. Only filled
/// when the flash array tracks content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedSector {
    /// Absolute logical sector number that was read.
    pub sector: u64,
    /// Write generation served; 0 for never-written sectors. `u64::MAX`
    /// flags a page whose OOB stamp disagrees with the requested sector —
    /// i.e. a mapping bug. [`crate::recover::LOST_VERSION`] (`u64::MAX - 1`)
    /// marks data the device lost to unrecoverable read failures and
    /// *acknowledged* losing — not a bug, a modelled fault outcome.
    pub version: u64,
}

/// Result of servicing one host request.
#[derive(Debug, Clone, Default)]
pub struct ServiceOutcome {
    /// When the last sub-operation finished.
    pub complete_ns: Nanos,
    /// Per-sector provenance (reads with content tracking only).
    pub served: Vec<ServedSector>,
}

impl ServiceOutcome {
    /// An outcome that finished at `complete_ns` with no provenance.
    pub fn at(complete_ns: Nanos) -> Self {
        ServiceOutcome {
            complete_ns,
            served: Vec::new(),
        }
    }

    /// Fold in a sub-operation completion.
    #[inline]
    pub fn merge_time(&mut self, t: Nanos) {
        self.complete_ns = self.complete_ns.max(t);
    }
}

/// Static scheme sizing derived from the device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeConfig {
    /// Exported logical pages (physical × export fraction).
    pub logical_pages: u64,
    /// DRAM mapping-cache budget in bytes. The default equals the baseline
    /// FTL's full table so the baseline never spills (§4.2.4 and DESIGN.md).
    pub cache_bytes: u64,
    /// GC trigger threshold on the free-block fraction (Table 1: 10 %).
    pub gc_threshold: f64,
    /// GC stop hysteresis: collect until `gc_threshold + gc_hysteresis`
    /// free so the trigger doesn't chatter at the boundary.
    #[serde(default = "default_gc_hysteresis")]
    pub gc_hysteresis: f64,
    /// GC policy / preemption / idle / throttle knobs (PR 7). Serde-
    /// defaulted so pre-v6 manifests still deserialize.
    #[serde(default)]
    pub gc: GcTuning,
    /// Pipelined map-engine knobs (PR 8). Serde-defaulted (pipeline off)
    /// so pre-v7 manifests still deserialize.
    #[serde(default)]
    pub pipeline: PipelineConfig,
    /// Learned-mapping knobs (PR 9). Serde-defaulted so pre-v8 manifests
    /// still deserialize; only [`SchemeKind::Learned`] reads them.
    #[serde(default)]
    pub learned: LearnedConfig,
}

fn default_gc_hysteresis() -> f64 {
    crate::gc::GcConfig::default().hysteresis
}

impl SchemeConfig {
    /// Paper-style defaults for a device: 90 % of physical pages exported,
    /// GC at 10 %. The DRAM mapping-cache budget equals the baseline FTL's
    /// table over the *aged footprint* (~45 % of the logical space holds
    /// valid data after §4.1 warm-up, at 4 B per entry): the baseline table
    /// is then fully resident, Across-FTL's ~1.4× table is ~70 % resident
    /// and MRSM's ~2.4× table ~42 % resident — the residency ratios §4.2.4
    /// reports.
    pub fn for_geometry(geometry: &Geometry) -> Self {
        let logical_pages = geometry.total_pages() * 9 / 10;
        SchemeConfig {
            logical_pages,
            // Floor at 2 MB: even small controllers carry megabytes of
            // DRAM, and sub-floor caches on miniature test devices would
            // thrash for every scheme alike.
            cache_bytes: (logical_pages * 4 * 45 / 100).max(2 << 20),
            gc_threshold: 0.10,
            gc_hysteresis: default_gc_hysteresis(),
            gc: GcTuning::default(),
            pipeline: PipelineConfig::default(),
            learned: LearnedConfig::default(),
        }
    }

    /// Cache capacity in translation pages.
    pub fn cache_tpages(&self, page_bytes: u32) -> usize {
        ((self.cache_bytes / u64::from(page_bytes)).max(1)) as usize
    }
}

/// The FTL interface the simulator drives.
pub trait FtlScheme {
    /// Which scheme this is (for reports and dispatch-free branching).
    fn kind(&self) -> SchemeKind;

    /// Display name, defaulting to the kind's name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Service a host write.
    fn write(&mut self, env: &mut FtlEnv<'_>, req: &HostRequest) -> Result<ServiceOutcome>;

    /// Service a host read.
    fn read(&mut self, env: &mut FtlEnv<'_>, req: &HostRequest) -> Result<ServiceOutcome>;

    /// Run garbage collection if the free-space threshold is breached.
    /// With preemption enabled this runs one budgeted slice and may leave
    /// an episode parked; the simulator calls it after every write, so a
    /// parked episode resumes on the next call.
    fn maybe_gc(&mut self, env: &mut FtlEnv<'_>) -> Result<GcReport>;

    /// Run idle (background) GC for up to `max_pages` page copies during a
    /// host arrival gap. Default: no idle GC (schemes opt in by routing to
    /// [`crate::gc::GcState::idle_collect`]).
    fn idle_gc(&mut self, _env: &mut FtlEnv<'_>, _max_pages: u64) -> Result<GcReport> {
        Ok(GcReport::default())
    }

    /// Cumulative event counters since construction.
    fn counters(&self) -> &SchemeCounters;

    /// Mapping-cache hit/miss/eviction statistics.
    fn cache_stats(&self) -> CacheStats;

    /// Pipelined map-engine counters (all zero with the pipeline off or
    /// for schemes that bypass the engine).
    fn map_engine_stats(&self) -> MapEngineStats {
        MapEngineStats::default()
    }

    /// Learned-mapping counters (all zero for every scheme except
    /// [`SchemeKind::Learned`]).
    fn learned_stats(&self) -> LearnedStats {
        LearnedStats::default()
    }

    /// Modelled mapping-table footprint in bytes (Figure 12(a)).
    fn mapping_table_bytes(&self) -> u64;

    /// Number of logical pages the scheme exports to the host.
    fn logical_pages(&self) -> u64;

    /// Turn scheme-event logging on or off (AMerge/ARollback timings for
    /// the observability layer). Schemes without composite internal
    /// operations keep the default no-op.
    fn set_event_log(&mut self, _enabled: bool) {}

    /// Move events logged since the last drain into `into`. Default: none.
    fn drain_events(&mut self, _into: &mut Vec<SchemeEvent>) {}

    /// Snapshot the complete logical-to-physical mapping for a crash
    /// checkpoint (see [`crate::recovery`]). `None` means the scheme does
    /// not support checkpointed recovery.
    fn capture_image(&self) -> Option<crate::recovery::SchemeImage> {
        None
    }
}

// ---------------------------------------------------------------------------
// Shared helpers for page-mapping schemes
// ---------------------------------------------------------------------------

/// Content stamps for programming a page that holds `extent`'s new data at
/// `version`, merged over `base` (the old page's stamps for read-modify-
/// write; `None` for a fresh program).
pub(crate) fn extent_stamps(
    spp: u32,
    extent: &PageExtent,
    version: u64,
    base: Option<&[Option<SectorStamp>]>,
) -> Box<[Option<SectorStamp>]> {
    let mut stamps: Vec<Option<SectorStamp>> = match base {
        Some(b) => b.to_vec(),
        None => vec![None; spp as usize],
    };
    stamps.resize(spp as usize, None);
    let start = extent.start_sector(spp);
    for i in 0..extent.len {
        stamps[(extent.offset + i) as usize] = Some(SectorStamp {
            sector: start + u64::from(i),
            version,
        });
    }
    stamps.into_boxed_slice()
}

/// Program a normally-mapped page for `extent`, with read-modify-write when
/// the extent is partial and the LPN already has data (the conventional-FTL
/// behaviour whose cost Across-FTL avoids for across-page requests).
///
/// Returns the program completion time. `ready_ns` is when the mapping
/// lookup finished.
#[allow(clippy::too_many_arguments)]
pub(crate) fn program_normal_extent(
    array: &mut FlashArray,
    alloc: &mut Allocator,
    pmt: &mut PageMapTable,
    counters: &mut SchemeCounters,
    extent: &PageExtent,
    version: u64,
    arrive_ns: Nanos,
    ready_ns: Nanos,
    stamps_override: Option<Box<[Option<SectorStamp>]>>,
) -> Result<Nanos> {
    let spp = array.geometry().sectors_per_page();
    let page_bytes = array.geometry().page_bytes;
    let sector_bytes = array.geometry().sector_bytes;
    let old = pmt.get(extent.lpn).ppn;

    let mut ready = ready_ns;
    let mut base_stamps: Option<Box<[Option<SectorStamp>]>> = None;
    let rmw = !extent.is_full_page(spp) && old.is_valid();
    if rmw {
        // Read the old copy to preserve the sectors the extent misses.
        match read_with_retry(array, old, page_bytes, arrive_ns, ready)? {
            PageRead::Ok(r) => {
                ready = r.complete_ns;
                if array.tracks_content() {
                    base_stamps = array.content_of(old).map(|s| s.to_vec().into_boxed_slice());
                }
            }
            PageRead::Lost { complete_ns } => {
                // The sectors the extent misses are gone; the merged page
                // carries LOST_VERSION stamps for them so later reads
                // report the acknowledged loss instead of stale data.
                ready = complete_ns;
                counters.lost_pages += 1;
                if array.tracks_content() {
                    base_stamps = lost_stamps_of(array, old);
                }
            }
        }
        counters.rmw_reads += 1;
    }

    let bytes = if rmw {
        page_bytes
    } else {
        extent.len * sector_bytes
    };
    let (new_ppn, w) = program_relocating(
        array,
        alloc,
        StreamId::Data,
        PageKind::Data,
        extent.lpn,
        bytes,
        arrive_ns,
        ready,
    )?;
    if array.tracks_content() {
        let stamps = stamps_override
            .unwrap_or_else(|| extent_stamps(spp, extent, version, base_stamps.as_deref()));
        array.record_content(new_ppn, stamps);
    }
    let prev = pmt.set_ppn(extent.lpn, new_ppn);
    if prev.is_valid() {
        array.invalidate(prev)?;
    }
    Ok(w.complete_ns)
}

/// Assemble served-sector provenance for `count` sectors starting at
/// `first_sector`, read from `ppn` at in-page sector index `page_offset`.
pub(crate) fn served_from_page(
    array: &FlashArray,
    ppn: Ppn,
    page_offset: u32,
    first_sector: u64,
    count: u32,
    out: &mut Vec<ServedSector>,
) {
    let content = array.content_of(ppn);
    for i in 0..count {
        let sector = first_sector + u64::from(i);
        let version =
            match content.and_then(|c| c.get((page_offset + i) as usize).copied().flatten()) {
                Some(stamp) if stamp.sector == sector => stamp.version,
                Some(_) => u64::MAX, // page holds data for a different sector: mapping bug
                None => 0,
            };
        out.push(ServedSector { sector, version });
    }
}

/// Served-sector provenance for sectors known to be unwritten.
pub(crate) fn served_unwritten(first_sector: u64, count: u32, out: &mut Vec<ServedSector>) {
    for i in 0..count {
        out.push(ServedSector {
            sector: first_sector + u64::from(i),
            version: 0,
        });
    }
}

/// Served-sector provenance for sectors whose page was lost after the
/// read-retry ladder was exhausted: the device acknowledges the loss.
pub(crate) fn served_lost(first_sector: u64, count: u32, out: &mut Vec<ServedSector>) {
    for i in 0..count {
        out.push(ServedSector {
            sector: first_sector + u64::from(i),
            version: LOST_VERSION,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aftl_flash::TimingSpec;

    #[test]
    fn scheme_config_defaults() {
        let g = Geometry::paper_default();
        let cfg = SchemeConfig::for_geometry(&g);
        assert_eq!(cfg.logical_pages, g.total_pages() * 9 / 10);
        assert_eq!(
            cfg.cache_bytes,
            (cfg.logical_pages * 4 * 45 / 100).max(2 << 20)
        );
        assert!((cfg.gc_threshold - 0.10).abs() < 1e-12);
        assert!(cfg.cache_tpages(8192) > 0);
    }

    #[test]
    fn extent_stamps_overlay_base() {
        let spp = 8;
        let extent = PageExtent {
            lpn: 2,
            offset: 2,
            len: 3,
        };
        let base: Vec<Option<SectorStamp>> = (0..8)
            .map(|i| {
                Some(SectorStamp {
                    sector: 16 + i,
                    version: 1,
                })
            })
            .collect();
        let stamps = extent_stamps(spp, &extent, 5, Some(&base));
        assert_eq!(stamps[1].unwrap().version, 1);
        assert_eq!(stamps[2].unwrap().version, 5);
        assert_eq!(stamps[4].unwrap().version, 5);
        assert_eq!(stamps[5].unwrap().version, 1);
        assert_eq!(stamps[2].unwrap().sector, 18);
    }

    #[test]
    fn extent_stamps_fresh_page_leaves_holes() {
        let stamps = extent_stamps(
            8,
            &PageExtent {
                lpn: 0,
                offset: 6,
                len: 2,
            },
            3,
            None,
        );
        assert!(stamps[0].is_none());
        assert!(stamps[5].is_none());
        assert_eq!(stamps[6].unwrap().version, 3);
        assert_eq!(stamps[7].unwrap().sector, 7);
    }

    #[test]
    fn program_normal_extent_rmw_behaviour() {
        let g = Geometry::tiny(); // spp = 8
        let mut array = FlashArray::new(g, TimingSpec::unit()).unwrap();
        array.enable_content_tracking();
        let mut alloc = Allocator::new(&array);
        let mut pmt = PageMapTable::new(64);
        let mut counters = SchemeCounters::default();

        // Full-page write: no RMW.
        let full = PageExtent {
            lpn: 1,
            offset: 0,
            len: 8,
        };
        program_normal_extent(
            &mut array,
            &mut alloc,
            &mut pmt,
            &mut counters,
            &full,
            1,
            0,
            0,
            None,
        )
        .unwrap();
        assert_eq!(counters.rmw_reads, 0);
        let first_ppn = pmt.get(1).ppn;
        assert!(first_ppn.is_valid());

        // Partial update of the same LPN: RMW read + merge.
        let part = PageExtent {
            lpn: 1,
            offset: 2,
            len: 2,
        };
        program_normal_extent(
            &mut array,
            &mut alloc,
            &mut pmt,
            &mut counters,
            &part,
            2,
            0,
            0,
            None,
        )
        .unwrap();
        assert_eq!(counters.rmw_reads, 1);
        let new_ppn = pmt.get(1).ppn;
        assert_ne!(new_ppn, first_ppn);
        // Old page invalidated.
        assert!(array.page_info(first_ppn).unwrap().is_invalid());
        // Merged stamps: sector 8+2 at v2, sector 8+5 still v1.
        let c = array.content_of(new_ppn).unwrap();
        assert_eq!(c[2].unwrap().version, 2);
        assert_eq!(c[5].unwrap().version, 1);

        // Partial write to a fresh LPN: no read, holes left.
        let fresh = PageExtent {
            lpn: 2,
            offset: 0,
            len: 4,
        };
        program_normal_extent(
            &mut array,
            &mut alloc,
            &mut pmt,
            &mut counters,
            &fresh,
            3,
            0,
            0,
            None,
        )
        .unwrap();
        assert_eq!(counters.rmw_reads, 1, "no RMW for unmapped LPN");
        let c = array.content_of(pmt.get(2).ppn).unwrap();
        assert!(c[6].is_none());
    }

    #[test]
    fn served_from_page_detects_wrong_mapping() {
        let g = Geometry::tiny();
        let mut array = FlashArray::new(g, TimingSpec::unit()).unwrap();
        array.enable_content_tracking();
        array
            .program(Ppn(0), PageKind::Data, 9, 4096, 0, 0)
            .unwrap();
        let stamps: Vec<Option<SectorStamp>> = (0..8)
            .map(|i| {
                Some(SectorStamp {
                    sector: 100 + i,
                    version: 7,
                })
            })
            .collect();
        array.record_content(Ppn(0), stamps.into_boxed_slice());
        let mut out = Vec::new();
        served_from_page(&array, Ppn(0), 0, 100, 1, &mut out);
        assert_eq!(out[0].version, 7);
        out.clear();
        // Asking for sector 100 at page offset 1 (which holds sector 101)
        // must be flagged as a mapping bug.
        served_from_page(&array, Ppn(0), 1, 100, 1, &mut out);
        assert_eq!(out[0].version, u64::MAX, "stamp sector mismatch flagged");
    }
}
