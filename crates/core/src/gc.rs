//! Policy-pluggable, preemptible garbage collection (§2.1 of the paper,
//! generalized).
//!
//! When the free-block fraction drops below the threshold (Table 1: 10 %),
//! GC selects victim blocks, migrates their valid pages (read + program on
//! the chip timelines, so GC genuinely delays host I/O), erases them and
//! returns them to the allocator. Schemes supply a remap callback or a
//! [`PageMigrator`] that fixes their mapping tables from the migrated
//! pages' OOB tags.
//!
//! Three things are pluggable on top of the paper's greedy atomic design:
//!
//! * **Victim policy** ([`GcPolicy`]) — greedy (most invalid pages first,
//!   the paper's choice), cost-benefit (age × benefit/cost scoring), or
//!   windowed greedy (greediest pick among the oldest candidates).
//! * **Preemption** ([`GcTuning::preempt_pages`]) — an episode becomes a
//!   resumable [`GcEpisode`] state machine; each foreground invocation
//!   runs at most a budget of page copies and pauses, so host requests
//!   interleave with GC at page-copy granularity instead of stalling
//!   behind a whole episode. A near-empty device
//!   ([`GcTuning::urgent_ratio`]) overrides the budget so preemption can
//!   never starve the allocator.
//! * **Idle collection** ([`GcTuning::idle_headroom`]) — the host engine
//!   reports arrival gaps; [`GcState::idle_collect`] uses them to run
//!   budgeted background slices proactively, above the foreground
//!   threshold.
//!
//! With preemption disabled and the greedy policy (the defaults), the
//! episode machine replays the historic atomic collector *bit for bit*:
//! same candidate ordering, same flash-op sequence, same report — the
//! fig8 golden-digest parity tests pin this down.

use crate::recover::{lost_stamps_of, program_relocating, read_with_retry};
use aftl_flash::{
    Allocator, BlockAddr, FlashArray, FlashError, Nanos, PageInfo, Ppn, Result, StreamId,
};
use serde::{Deserialize, Serialize};

/// Victim-selection policy for GC episodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GcPolicy {
    /// Most invalid pages first (the paper's greedy collector).
    #[default]
    Greedy,
    /// Classic cost-benefit: maximize `age × invalid / (2 × valid + 1)`,
    /// where age is the victim-index entry tick. Prefers cold blocks whose
    /// reclaim is cheap, avoiding hot blocks about to gain more invalid
    /// pages.
    CostBenefit,
    /// Windowed greedy: order candidates oldest-first, then pick the
    /// greediest within each [`GcTuning::window`]-sized window. Bounds
    /// how long a cold, half-invalid block can be starved by fresher,
    /// fuller victims.
    Windowed,
}

impl GcPolicy {
    /// CLI / manifest label.
    pub fn name(self) -> &'static str {
        match self {
            GcPolicy::Greedy => "greedy",
            GcPolicy::CostBenefit => "cost-benefit",
            GcPolicy::Windowed => "windowed",
        }
    }

    /// Parse a CLI label (the inverse of [`GcPolicy::name`]).
    pub fn parse(s: &str) -> Option<GcPolicy> {
        match s {
            "greedy" => Some(GcPolicy::Greedy),
            "cost-benefit" | "costbenefit" | "cb" => Some(GcPolicy::CostBenefit),
            "windowed" => Some(GcPolicy::Windowed),
            _ => None,
        }
    }
}

fn default_window() -> u32 {
    8
}

fn default_urgent_ratio() -> f64 {
    0.5
}

fn default_throttle_delay() -> u64 {
    2_000_000 // one TLC program time
}

/// Policy / preemption / idle / throttle knobs — everything about GC
/// except the trigger threshold (which stays a top-level scheme config
/// field for manifest compatibility). All fields are serde-defaulted so
/// pre-v6 manifests still deserialize.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcTuning {
    /// Victim-selection policy.
    #[serde(default)]
    pub policy: GcPolicy,
    /// Foreground slice budget in page copies; `0` = atomic episodes
    /// (the paper's behavior, and the default).
    #[serde(default)]
    pub preempt_pages: u32,
    /// Window width for [`GcPolicy::Windowed`].
    #[serde(default = "default_window")]
    pub window: u32,
    /// Below `threshold × urgent_ratio` free fraction, a foreground slice
    /// ignores the preemption budget and collects until the stop mark —
    /// graceful degradation beats an allocator failure.
    #[serde(default = "default_urgent_ratio")]
    pub urgent_ratio: f64,
    /// Idle (background) GC runs while the free fraction is below
    /// `threshold + idle_headroom`; `0` disables idle GC (the default).
    #[serde(default)]
    pub idle_headroom: f64,
    /// Host writes are delayed by [`GcTuning::throttle_delay_ns`] while
    /// the free fraction is below this; `0` disables the throttle
    /// (the default).
    #[serde(default)]
    pub throttle_fraction: f64,
    /// Extra admission latency per throttled write.
    #[serde(default = "default_throttle_delay")]
    pub throttle_delay_ns: u64,
}

impl Default for GcTuning {
    fn default() -> Self {
        GcTuning {
            policy: GcPolicy::Greedy,
            preempt_pages: 0,
            window: default_window(),
            urgent_ratio: default_urgent_ratio(),
            idle_headroom: 0.0,
            throttle_fraction: 0.0,
            throttle_delay_ns: default_throttle_delay(),
        }
    }
}

/// GC tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcConfig {
    /// Trigger when the free-block fraction falls below this (Table 1: 0.10).
    pub threshold: f64,
    /// Keep reclaiming until the fraction exceeds `threshold + hysteresis`,
    /// so GC runs in episodes rather than once per write.
    pub hysteresis: f64,
    /// Policy / preemption / idle / throttle knobs.
    #[serde(default)]
    pub tuning: GcTuning,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            threshold: 0.10,
            hysteresis: 0.0005,
            tuning: GcTuning::default(),
        }
    }
}

/// What one `maybe_gc` invocation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcReport {
    /// Whether the free-space threshold was breached at all.
    pub triggered: bool,
    /// Blocks erased and returned to the allocator.
    pub erased_blocks: u64,
    /// Valid pages migrated out of victim blocks.
    pub migrated_pages: u64,
    /// Victim blocks retired instead of reclaimed (erase failure or
    /// worn-out endurance budget). Their pages were migrated first, so no
    /// data is lost — only capacity.
    #[serde(default)]
    pub retired_blocks: u64,
    /// Migrated pages whose source read exhausted the retry ladder; the
    /// copy carries [`crate::recover::LOST_VERSION`] stamps.
    #[serde(default)]
    pub lost_pages: u64,
    /// Collection episodes started (victim set selected). Unlike the
    /// boolean `triggered`, this survives [`GcReport::merge`], so "how
    /// many episodes" is recoverable from an aggregated report.
    #[serde(default)]
    pub episodes: u64,
    /// Foreground slices that paused at the preemption budget with the
    /// episode unfinished.
    #[serde(default)]
    pub preemptions: u64,
    /// Pages migrated by idle (background) slices.
    #[serde(default)]
    pub idle_pages: u64,
}

impl GcReport {
    /// Accumulate another invocation's report into this one.
    pub fn merge(&mut self, o: &GcReport) {
        self.triggered |= o.triggered;
        self.erased_blocks += o.erased_blocks;
        self.migrated_pages += o.migrated_pages;
        self.retired_blocks += o.retired_blocks;
        self.lost_pages += o.lost_pages;
        self.episodes += o.episodes;
        self.preemptions += o.preemptions;
        self.idle_pages += o.idle_pages;
    }
}

/// How a scheme relocates the valid pages of GC victims.
///
/// The default [`CopyMigrator`] copies pages one-to-one; schemes with
/// sub-page layouts (MRSM) provide their own migrator so sparse region
/// pages are *repacked* during collection instead of being copied sparse —
/// without this, sub-page fragmentation would permanently inflate the
/// valid-data footprint.
///
/// Preemption contract: `migrate` must invalidate *only* `old` (all three
/// in-tree migrators do). The episode machine re-checks a page's validity
/// when resuming after a pause, which is sound exactly because sibling
/// pages of the same victim are never invalidated as a side effect.
pub trait PageMigrator {
    /// Relocate one valid page (`old`, with OOB `info`). The implementation
    /// must issue the flash ops, invalidate `old`, and update its mapping
    /// state. Returns the number of pages programmed; source-read losses
    /// are recorded in `report.lost_pages`.
    fn migrate(
        &mut self,
        array: &mut FlashArray,
        alloc: &mut Allocator,
        now: Nanos,
        old: Ppn,
        info: &PageInfo,
        report: &mut GcReport,
    ) -> Result<u64>;

    /// Called once at the end of every collection slice (flush any
    /// partially packed buffers). Migrators are rebuilt per invocation —
    /// they borrow scheme tables — so a paused episode must not leave
    /// state inside one.
    fn finish(
        &mut self,
        _array: &mut FlashArray,
        _alloc: &mut Allocator,
        _now: Nanos,
        _report: &mut GcReport,
    ) -> Result<u64> {
        Ok(0)
    }
}

/// The default migrator: one-to-one page copy plus a remap callback.
pub struct CopyMigrator<F>(pub F);

impl<F> PageMigrator for CopyMigrator<F>
where
    F: FnMut(&mut FlashArray, Ppn, Ppn, &PageInfo),
{
    fn migrate(
        &mut self,
        array: &mut FlashArray,
        alloc: &mut Allocator,
        now: Nanos,
        old: Ppn,
        info: &PageInfo,
        report: &mut GcReport,
    ) -> Result<u64> {
        let page_bytes = array.geometry().page_bytes;
        let r = read_with_retry(array, old, page_bytes, now, now)?;
        if r.is_lost() {
            report.lost_pages += 1;
        }
        // Stripe migrated pages across planes: the program (2 ms) dominates
        // the migration cost, and pinning it to the victim's chip would
        // serialise a whole block's migration on one chip, stalling host
        // I/O far beyond what SSDsim's per-plane GC exhibits.
        let (new_ppn, _) = program_relocating(
            array,
            alloc,
            StreamId::Gc,
            info.kind,
            info.tag,
            page_bytes,
            now,
            r.complete_ns(),
        )?;
        if array.tracks_content() {
            let stamps = if r.is_lost() {
                lost_stamps_of(array, old)
            } else {
                array.content_of(old).map(|s| s.to_vec().into_boxed_slice())
            };
            if let Some(stamps) = stamps {
                array.record_content(new_ppn, stamps);
            }
        }
        array.invalidate(old)?;
        (self.0)(array, old, new_ppn, info);
        Ok(1)
    }
}

/// One erase candidate at episode start, as scored by the victim policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimCand {
    /// Invalid pages in the block (the greedy signal).
    pub invalid: u32,
    /// Plane of the block.
    pub plane_idx: u64,
    /// Block within its plane.
    pub block: u32,
    /// Victim-index entry tick (smaller = became a candidate earlier).
    pub stamp: u64,
}

impl VictimCand {
    #[inline]
    fn addr(&self) -> BlockAddr {
        BlockAddr {
            plane_idx: self.plane_idx,
            block: self.block,
        }
    }
}

/// Order `cands` into episode victim order under `policy`. Exposed (and
/// pure) so the property tests can exercise the policies directly.
///
/// Input contract: `cands` is pre-sorted plane-major / block-ascending —
/// the historic full-scan order — so the greedy arm reproduces the
/// pre-refactor collector's `sort_unstable_by_key(Reverse(invalid))`
/// permutation bit for bit.
pub fn order_victims(
    policy: GcPolicy,
    window: u32,
    pages_per_block: u32,
    cands: &mut [VictimCand],
) {
    match policy {
        GcPolicy::Greedy => {
            cands.sort_unstable_by_key(|c| std::cmp::Reverse(c.invalid));
        }
        GcPolicy::CostBenefit => {
            // Benefit/cost × age with integer arithmetic: score =
            // age × invalid × (2·ppb + 1) / (2 × valid + 1), where valid
            // = pages_per_block − invalid (candidates are full blocks)
            // and age is measured by entry order (newest stamp = age 1).
            // The (2·ppb + 1) numerator scale exceeds every possible
            // denominator, so any block with an invalid page scores ≥ 1 —
            // floor division can never tie it with a fully-valid block's
            // zero. (plane, block) tie-breaks keep the order total and
            // deterministic.
            let newest = cands.iter().map(|c| c.stamp).max().unwrap_or(0);
            let scale = 2 * u128::from(pages_per_block) + 1;
            let score = |c: &VictimCand| -> u128 {
                let age = u128::from(newest - c.stamp) + 1;
                let valid = u128::from(pages_per_block.saturating_sub(c.invalid));
                age * u128::from(c.invalid) * scale / (2 * valid + 1)
            };
            cands.sort_unstable_by_key(|c| (std::cmp::Reverse(score(c)), c.plane_idx, c.block));
        }
        GcPolicy::Windowed => {
            // Oldest candidates first (stamps are unique), then greediest
            // within each window of that ordering. Fully-valid blocks sort
            // behind every reclaimable one regardless of age — erasing
            // them frees nothing.
            cands.sort_unstable_by_key(|c| (c.invalid == 0, c.stamp));
            let w = (window.max(1)) as usize;
            for chunk in cands.chunks_mut(w) {
                chunk
                    .sort_unstable_by_key(|c| (std::cmp::Reverse(c.invalid), c.plane_idx, c.block));
            }
        }
    }
}

/// A resumable collection episode: the victim list chosen at episode
/// start, a cursor over the current victim's valid pages, and the blocks
/// erased so far. Paused and resumed by [`GcState`]; holds no borrows, so
/// it lives inside a scheme across invocations.
#[derive(Debug)]
pub struct GcEpisode {
    /// Policy-ordered victims, fixed at episode start.
    victims: Vec<VictimCand>,
    /// Next victim to (re)load.
    next_victim: usize,
    /// Valid pages of the current victim, captured at victim start.
    pages: Vec<(Ppn, PageInfo)>,
    /// Cursor into `pages`.
    next_page: usize,
    /// Whether `pages`/`next_page` refer to `victims[next_victim]`.
    loaded: bool,
    /// Blocks erased by this episode so far (feeds the historic
    /// nothing-reclaimable [`FlashError::NoFreeBlocks`] check).
    erased: u64,
}

/// How a collection slice ended.
enum SliceEnd {
    /// Episode finished (victims exhausted or stop mark reached); carries
    /// the episode's total erased-block count.
    Done { episode_erased: u64 },
    /// Budget exhausted with work remaining; the episode stays parked.
    Paused,
}

/// The per-scheme GC driver: configuration plus the (at most one) parked
/// [`GcEpisode`]. Foreground collection ([`GcState::maybe_collect`]) runs
/// after host writes; idle collection ([`GcState::idle_collect`]) runs in
/// host arrival gaps when enabled.
#[derive(Debug)]
pub struct GcState {
    cfg: GcConfig,
    episode: Option<GcEpisode>,
}

impl GcState {
    /// A driver with no episode in flight.
    pub fn new(cfg: GcConfig) -> Self {
        GcState { cfg, episode: None }
    }

    /// The configuration this driver runs.
    #[inline]
    pub fn config(&self) -> &GcConfig {
        &self.cfg
    }

    /// Whether a paused episode is waiting to resume.
    #[inline]
    pub fn in_episode(&self) -> bool {
        self.episode.is_some()
    }

    /// Foreground collection: trigger below the threshold, resume a parked
    /// episode, and run up to the preemption budget of page copies
    /// (unbounded when `preempt_pages` is 0 or free space is urgent-low).
    /// Mirrors the historic atomic collector exactly when preemption is
    /// off and the policy is greedy.
    pub fn maybe_collect(
        &mut self,
        array: &mut FlashArray,
        alloc: &mut Allocator,
        now: Nanos,
        migrator: &mut dyn PageMigrator,
    ) -> Result<GcReport> {
        let mut report = GcReport::default();
        if self.episode.is_none() {
            if alloc.free_fraction() >= self.cfg.threshold {
                return Ok(report);
            }
            self.start_episode(array, alloc, &mut report);
        }
        report.triggered = true;

        let t = self.cfg.tuning;
        let urgent = alloc.free_fraction() < self.cfg.threshold * t.urgent_ratio;
        let budget = if t.preempt_pages == 0 || urgent {
            u64::MAX
        } else {
            u64::from(t.preempt_pages)
        };
        let stop_at = self.cfg.threshold + self.cfg.hysteresis;
        match self.run_slice(array, alloc, now, stop_at, budget, migrator, &mut report)? {
            SliceEnd::Done { episode_erased } => {
                if alloc.free_fraction() < self.cfg.threshold && episode_erased == 0 {
                    // Nothing reclaimable: the device is genuinely full of
                    // valid data.
                    return Err(FlashError::NoFreeBlocks);
                }
            }
            SliceEnd::Paused => report.preemptions += 1,
        }
        Ok(report)
    }

    /// Idle (background) collection: run up to `max_pages` page copies
    /// while the free fraction sits below `threshold + idle_headroom`.
    /// No-op when idle GC is disabled. Never reports
    /// [`FlashError::NoFreeBlocks`] — a genuinely full device is the
    /// foreground path's error to raise.
    pub fn idle_collect(
        &mut self,
        array: &mut FlashArray,
        alloc: &mut Allocator,
        now: Nanos,
        max_pages: u64,
        migrator: &mut dyn PageMigrator,
    ) -> Result<GcReport> {
        let mut report = GcReport::default();
        let t = self.cfg.tuning;
        if t.idle_headroom <= 0.0 || max_pages == 0 {
            return Ok(report);
        }
        let target = self.cfg.threshold + t.idle_headroom;
        if self.episode.is_none() {
            if alloc.free_fraction() >= target {
                return Ok(report);
            }
            self.start_episode(array, alloc, &mut report);
        }
        report.triggered = alloc.free_fraction() < self.cfg.threshold;
        let end = self.run_slice(array, alloc, now, target, max_pages, migrator, &mut report);
        match end {
            Ok(_) => {
                report.idle_pages = report.migrated_pages;
                Ok(report)
            }
            Err(FlashError::NoFreeBlocks) => {
                report.idle_pages = report.migrated_pages;
                Ok(report)
            }
            Err(e) => Err(e),
        }
    }

    /// Select this episode's victims. Candidate enumeration and ordering
    /// keep the historic full-scan order as the pre-sort so the greedy
    /// policy stays bit-identical to the pre-refactor collector.
    fn start_episode(&mut self, array: &FlashArray, alloc: &Allocator, report: &mut GcReport) {
        // The victim list for the whole episode comes from the
        // incrementally maintained index (full blocks with reclaimable
        // pages, retired blocks already excluded), so episode startup is
        // O(candidates), not O(total blocks). Active blocks are excluded
        // here (they are still being programmed).
        let vi = array.victim_index();
        let mut cands: Vec<VictimCand> = Vec::with_capacity(vi.len());
        vi.for_each(|invalid, addr| {
            if !alloc.is_active(addr) {
                cands.push(VictimCand {
                    invalid,
                    plane_idx: addr.plane_idx,
                    block: addr.block,
                    stamp: vi.stamp_of(addr).unwrap_or(0),
                });
            }
        });
        cands.sort_unstable_by_key(|c| (c.plane_idx, c.block));

        // Debug oracle: the retired full scan must agree with the index.
        #[cfg(debug_assertions)]
        {
            array
                .check_victim_index()
                .expect("victim index consistent with block summaries");
            let mut scan: Vec<(u32, u64, u32)> = Vec::new();
            for plane in 0..array.geometry().total_planes() {
                for s in array.block_summaries(plane) {
                    if s.full && s.invalid > 0 && !s.retired && !alloc.is_active(s.addr) {
                        scan.push((s.invalid, s.addr.plane_idx, s.addr.block));
                    }
                }
            }
            let from_index: Vec<(u32, u64, u32)> = cands
                .iter()
                .map(|c| (c.invalid, c.plane_idx, c.block))
                .collect();
            assert_eq!(from_index, scan, "victim index diverged from full scan");
        }

        let t = self.cfg.tuning;
        order_victims(
            t.policy,
            t.window,
            array.geometry().pages_per_block,
            &mut cands,
        );
        report.episodes += 1;
        self.episode = Some(GcEpisode {
            victims: cands,
            next_victim: 0,
            pages: Vec::new(),
            next_page: 0,
            loaded: false,
            erased: 0,
        });
    }

    /// Run one slice of the parked episode: copy up to `budget` valid
    /// pages, erasing victims as they drain, until the stop mark, victim
    /// exhaustion, or the budget. Always flushes the migrator before
    /// returning (migrators are rebuilt per invocation). On `Done` the
    /// episode is dropped; on error it is dropped too — the scheme
    /// surfaces the error and a later trigger starts fresh.
    #[allow(clippy::too_many_arguments)]
    fn run_slice(
        &mut self,
        array: &mut FlashArray,
        alloc: &mut Allocator,
        now: Nanos,
        stop_at: f64,
        budget: u64,
        migrator: &mut dyn PageMigrator,
        report: &mut GcReport,
    ) -> Result<SliceEnd> {
        let mut copied: u64 = 0;
        let end = loop {
            let ep = self.episode.as_mut().expect("slice runs with an episode");
            if !ep.loaded {
                // Victim boundary: the stop mark is only checked here,
                // matching the historic per-victim (not per-page) check.
                if ep.next_victim >= ep.victims.len() || alloc.free_fraction() >= stop_at {
                    break SliceEnd::Done {
                        episode_erased: ep.erased,
                    };
                }
                if copied >= budget {
                    break SliceEnd::Paused;
                }
                let victim = ep.victims[ep.next_victim].addr();
                array.valid_pages_into(victim, &mut ep.pages);
                ep.next_page = 0;
                ep.loaded = true;
            }

            while ep.next_page < ep.pages.len() {
                if copied >= budget {
                    break;
                }
                let (old_ppn, info) = ep.pages[ep.next_page];
                ep.next_page += 1;
                // Host writes between slices may have invalidated pages
                // captured at victim start; skip them — their mapping
                // already points at the newer copy. (With atomic episodes
                // nothing interleaves, so nothing is ever skipped.)
                let still_valid = match array.page_info(old_ppn) {
                    Ok(cur) => cur.is_valid(),
                    Err(e) => {
                        self.episode = None;
                        return Err(e);
                    }
                };
                if !still_valid {
                    continue;
                }
                match migrator.migrate(array, alloc, now, old_ppn, &info, report) {
                    Ok(programs) => report.migrated_pages += programs,
                    Err(e) => {
                        self.episode = None;
                        return Err(e);
                    }
                }
                array.note_gc_migration();
                copied += 1;
            }
            if ep.next_page < ep.pages.len() {
                break SliceEnd::Paused;
            }

            // Victim drained. Without a crash armed it is safe to erase
            // before flushing packed buffers: migrate() already read the
            // data and invalidated the source pages. With a crash armed the
            // DRAM repack buffers (MRSM sub-regions, learned sorted pages)
            // would be lost by a power cut after the erase destroyed their
            // source pages, so the migrator must flush to flash *first* —
            // the same write-before-erase ordering real crash-consistent
            // GCs enforce. A failed or worn-out erase retires the victim
            // instead of reclaiming it — its valid data already moved, so
            // only capacity shrinks.
            if array.crash_armed() {
                match migrator.finish(array, alloc, now, report) {
                    Ok(programs) => report.migrated_pages += programs,
                    Err(e) => {
                        self.episode = None;
                        return Err(e);
                    }
                }
            }
            let victim = ep.victims[ep.next_victim].addr();
            match array.erase(victim, now) {
                Ok(_) => {
                    alloc.release_block(victim);
                    report.erased_blocks += 1;
                    ep.erased += 1;
                }
                Err(FlashError::EraseFailed { .. }) | Err(FlashError::WornOut { .. }) => {
                    report.retired_blocks += 1;
                }
                Err(e) => {
                    self.episode = None;
                    return Err(e);
                }
            }
            ep.next_victim += 1;
            ep.loaded = false;
        };

        match migrator.finish(array, alloc, now, report) {
            Ok(programs) => report.migrated_pages += programs,
            Err(e) => {
                self.episode = None;
                return Err(e);
            }
        }
        if matches!(end, SliceEnd::Done { .. }) {
            self.episode = None;
        }
        Ok(end)
    }
}

/// Run a GC episode to completion if needed. `remap(array, old, new,
/// info)` must update the scheme's mapping state for a page migrated from
/// `old` to `new` (identified by its OOB `info.kind`/`info.tag`).
///
/// Convenience wrapper over [`GcState`] for callers without a persistent
/// driver (tests, one-shot tools): the episode always runs to completion
/// within the call, looping over slices if `cfg` enables preemption.
pub fn maybe_collect<F>(
    array: &mut FlashArray,
    alloc: &mut Allocator,
    now: Nanos,
    cfg: &GcConfig,
    remap: F,
) -> Result<GcReport>
where
    F: FnMut(&mut FlashArray, Ppn, Ppn, &PageInfo),
{
    maybe_collect_with(array, alloc, now, cfg, &mut CopyMigrator(remap))
}

/// Run a GC episode to completion with a scheme-provided [`PageMigrator`].
/// See [`maybe_collect`].
pub fn maybe_collect_with(
    array: &mut FlashArray,
    alloc: &mut Allocator,
    now: Nanos,
    cfg: &GcConfig,
    migrator: &mut dyn PageMigrator,
) -> Result<GcReport> {
    let mut state = GcState::new(*cfg);
    let mut total = GcReport::default();
    loop {
        let r = state.maybe_collect(array, alloc, now, migrator)?;
        total.merge(&r);
        if !state.in_episode() {
            return Ok(total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aftl_flash::{Geometry, PageKind, TimingSpec};
    use std::collections::HashMap;

    /// Fill the device with single-LPN pages, overwriting to create
    /// invalid pages, then check GC reclaims space and remaps correctly.
    #[test]
    fn gc_reclaims_and_remaps() {
        let g = Geometry::tiny(); // 32 blocks × 8 pages
        let mut array = FlashArray::new(g, TimingSpec::unit()).unwrap();
        let mut alloc = Allocator::new(&array);
        let mut map: HashMap<u64, Ppn> = HashMap::new();

        // Keep writing a working set of 40 LPNs until free space dips
        // under the threshold; then GC must bring it back.
        // A large hysteresis forces episodes deep enough that GC must also
        // collect mixed blocks (cold pages among invalid ones) → migrations.
        let cfg = GcConfig {
            threshold: 0.25,
            hysteresis: 0.74, // reclaim everything reclaimable each episode
            ..GcConfig::default()
        };
        // Cold data first: these LPNs are never overwritten, so GC must
        // migrate them out of mostly-invalid victim blocks.
        for lpn in 20..40u64 {
            let ppn = alloc.alloc_page(&array, StreamId::Data).unwrap();
            array.program(ppn, PageKind::Data, lpn, 4096, 0, 0).unwrap();
            map.insert(lpn, ppn);
        }
        let mut writes = 0u64;
        for round in 0..2000u64 {
            let lpn = round % 20;
            let ppn = alloc.alloc_page(&array, StreamId::Data).unwrap();
            array.program(ppn, PageKind::Data, lpn, 4096, 0, 0).unwrap();
            if let Some(old) = map.insert(lpn, ppn) {
                array.invalidate(old).unwrap();
            }
            writes += 1;

            let rep = maybe_collect(&mut array, &mut alloc, 0, &cfg, |_, old, new, info| {
                assert_eq!(info.kind, PageKind::Data);
                let cur = map.get_mut(&info.tag).unwrap();
                assert_eq!(*cur, old, "GC must migrate the current copy");
                *cur = new;
            })
            .unwrap();
            if rep.triggered {
                assert!(alloc.free_fraction() >= cfg.threshold);
                assert!(rep.episodes >= 1, "triggered work runs in episodes");
            }
        }
        assert!(writes == 2000);
        assert!(array.stats().erases > 0, "GC must have erased blocks");
        assert!(array.stats().gc_migrations > 0);
        // All 40 LPNs still resolvable and valid.
        for (_, ppn) in map {
            assert!(array.page_info(ppn).unwrap().is_valid());
        }
    }

    #[test]
    fn gc_noop_when_space_plentiful() {
        let g = Geometry::tiny();
        let mut array = FlashArray::new(g, TimingSpec::unit()).unwrap();
        let mut alloc = Allocator::new(&array);
        let rep = maybe_collect(
            &mut array,
            &mut alloc,
            0,
            &GcConfig::default(),
            |_, _, _, _| panic!("no migration expected"),
        )
        .unwrap();
        assert!(!rep.triggered);
        assert_eq!(rep.erased_blocks, 0);
        assert_eq!(rep.episodes, 0);
    }

    #[test]
    fn gc_fails_when_everything_is_valid() {
        let g = Geometry::tiny();
        let mut array = FlashArray::new(g, TimingSpec::unit()).unwrap();
        let mut alloc = Allocator::new(&array);
        // Unique LPNs: nothing ever invalidated.
        let total = array.geometry().total_pages();
        for lpn in 0..(total * 95 / 100) {
            let ppn = alloc.alloc_page(&array, StreamId::Data).unwrap();
            array.program(ppn, PageKind::Data, lpn, 4096, 0, 0).unwrap();
        }
        let cfg = GcConfig {
            threshold: 0.20,
            hysteresis: 0.0,
            ..GcConfig::default()
        };
        let err = maybe_collect(&mut array, &mut alloc, 0, &cfg, |_, _, _, _| {}).unwrap_err();
        assert_eq!(err, FlashError::NoFreeBlocks);
    }

    #[test]
    fn gc_preserves_content_stamps() {
        let g = Geometry::tiny();
        let mut array = FlashArray::new(g, TimingSpec::unit()).unwrap();
        array.enable_content_tracking();
        let mut alloc = Allocator::new(&array);
        let mut map: HashMap<u64, Ppn> = HashMap::new();

        let cfg = GcConfig {
            threshold: 0.30,
            hysteresis: 0.05,
            ..GcConfig::default()
        };
        for round in 0..1500u64 {
            let lpn = round % 30;
            let ppn = alloc.alloc_page(&array, StreamId::Data).unwrap();
            array.program(ppn, PageKind::Data, lpn, 4096, 0, 0).unwrap();
            array.record_content(
                ppn,
                vec![
                    Some(aftl_flash::SectorStamp {
                        sector: lpn * 8,
                        version: round,
                    });
                    8
                ]
                .into_boxed_slice(),
            );
            if let Some(old) = map.insert(lpn, ppn) {
                array.invalidate(old).unwrap();
            }
            maybe_collect(&mut array, &mut alloc, 0, &cfg, |_, old, new, info| {
                let cur = map.get_mut(&info.tag).unwrap();
                assert_eq!(*cur, old);
                *cur = new;
            })
            .unwrap();
        }
        // Content must have followed the migrations.
        for (lpn, ppn) in map {
            let c = array.content_of(ppn).expect("migrated content present");
            assert_eq!(c[0].unwrap().sector, lpn * 8);
        }
    }

    /// Shared workload builder for the preemption/policy tests: a
    /// near-full device (tiny geometry: 64 blocks × 8 pages) whose blocks
    /// mix hot (mostly-invalid) and cold (still-valid) pages, so GC
    /// episodes span several victims and migrate real pages.
    fn churned_device() -> (FlashArray, Allocator, HashMap<u64, Ppn>) {
        let g = Geometry::tiny();
        let mut array = FlashArray::new(g, TimingSpec::unit()).unwrap();
        let mut alloc = Allocator::new(&array);
        let mut map: HashMap<u64, Ppn> = HashMap::new();
        let mut cold = 1000u64;
        for round in 0..440u64 {
            // One cold (never overwritten) page every 9 writes keeps
            // victims mixed; the rest churn a 30-LPN hot set. The stride
            // is coprime to the 4-plane round-robin so cold pages land on
            // every plane (no plane of purely-invalid free wins).
            let lpn = if round % 9 == 3 {
                cold += 1;
                cold
            } else {
                round % 30
            };
            let ppn = alloc.alloc_page(&array, StreamId::Data).unwrap();
            array.program(ppn, PageKind::Data, lpn, 4096, 0, 0).unwrap();
            if let Some(old) = map.insert(lpn, ppn) {
                array.invalidate(old).unwrap();
            }
        }
        assert!(alloc.free_fraction() < 0.20, "workload fills the device");
        (array, alloc, map)
    }

    /// Drive a GcState to episode completion in budgeted slices; returns
    /// (merged report, slices).
    fn drain(
        state: &mut GcState,
        array: &mut FlashArray,
        alloc: &mut Allocator,
        map: &mut HashMap<u64, Ppn>,
    ) -> (GcReport, u32) {
        let mut total = GcReport::default();
        let mut slices = 0;
        loop {
            let r = state
                .maybe_collect(
                    array,
                    alloc,
                    0,
                    &mut CopyMigrator(|_: &mut FlashArray, old, new, info: &PageInfo| {
                        let cur = map.get_mut(&info.tag).unwrap();
                        assert_eq!(*cur, old);
                        *cur = new;
                    }),
                )
                .unwrap();
            total.merge(&r);
            slices += 1;
            if !state.in_episode() {
                return (total, slices);
            }
        }
    }

    #[test]
    fn preempted_episode_reaches_the_atomic_end_state() {
        let run = |preempt_pages: u32| {
            let (mut array, mut alloc, mut map) = churned_device();
            let mut state = GcState::new(GcConfig {
                threshold: 0.30,
                hysteresis: 0.10,
                tuning: GcTuning {
                    preempt_pages,
                    // The device is already below threshold × default
                    // urgent_ratio; keep the budget in force so this test
                    // exercises pausing (urgency is covered separately).
                    urgent_ratio: 0.0,
                    ..GcTuning::default()
                },
            });
            let (report, slices) = drain(&mut state, &mut array, &mut alloc, &mut map);
            let mut mapping: Vec<(u64, Ppn)> = map.into_iter().collect();
            mapping.sort_unstable();
            (
                report,
                slices,
                alloc.free_blocks(),
                array.stats().erases,
                array.stats().gc_migrations,
                mapping,
            )
        };
        let atomic = run(0);
        let preempted = run(3);
        assert_eq!(atomic.1, 1, "atomic episode completes in one slice");
        assert!(preempted.1 > 1, "budget of 3 forces multiple slices");
        assert!(preempted.0.preemptions > 0);
        assert_eq!(atomic.0.erased_blocks, preempted.0.erased_blocks);
        assert_eq!(atomic.0.migrated_pages, preempted.0.migrated_pages);
        assert_eq!(atomic.2, preempted.2, "same free blocks at the end");
        assert_eq!(atomic.3, preempted.3, "same erases");
        assert_eq!(atomic.4, preempted.4, "same migrations");
        assert_eq!(atomic.5, preempted.5, "same final mapping");
    }

    #[test]
    fn urgent_low_space_overrides_the_budget() {
        let (mut array, mut alloc, mut map) = churned_device();
        // Free space is already far below threshold × urgent_ratio = 0.45,
        // so even a 1-page budget must collect atomically to the stop mark.
        let mut state = GcState::new(GcConfig {
            threshold: 0.90,
            hysteresis: 0.0,
            tuning: GcTuning {
                preempt_pages: 1,
                urgent_ratio: 0.5,
                ..GcTuning::default()
            },
        });
        assert!(alloc.free_fraction() < 0.45);
        let r = state
            .maybe_collect(
                &mut array,
                &mut alloc,
                0,
                &mut CopyMigrator(|_: &mut FlashArray, old, new, info: &PageInfo| {
                    let cur = map.get_mut(&info.tag).unwrap();
                    assert_eq!(*cur, old);
                    *cur = new;
                }),
            )
            .unwrap();
        assert!(!state.in_episode(), "urgent slice runs to completion");
        assert_eq!(r.preemptions, 0);
        assert!(r.erased_blocks > 0);
    }

    #[test]
    fn idle_collect_is_gated_and_budgeted() {
        let (mut array, mut alloc, mut map) = churned_device();
        let free = alloc.free_fraction();
        let mut remap = |_: &mut FlashArray, old: Ppn, new: Ppn, info: &PageInfo| {
            let cur = map.get_mut(&info.tag).unwrap();
            assert_eq!(*cur, old);
            *cur = new;
        };

        // Disabled (headroom 0): no work even under pressure.
        let mut off = GcState::new(GcConfig {
            threshold: free + 0.05,
            hysteresis: 0.0,
            ..GcConfig::default()
        });
        let r = off
            .idle_collect(&mut array, &mut alloc, 0, 64, &mut CopyMigrator(&mut remap))
            .unwrap();
        assert_eq!(r, GcReport::default());

        // Enabled and below threshold + headroom: budgeted slices make
        // progress and park the episode between calls.
        let mut on = GcState::new(GcConfig {
            threshold: free - 0.02,
            hysteresis: 0.0,
            tuning: GcTuning {
                idle_headroom: 0.10,
                ..GcTuning::default()
            },
        });
        let r = on
            .idle_collect(&mut array, &mut alloc, 0, 2, &mut CopyMigrator(&mut remap))
            .unwrap();
        assert_eq!(r.episodes, 1);
        assert!(r.idle_pages > 0 || r.erased_blocks > 0);
        assert_eq!(r.idle_pages, r.migrated_pages);
        assert!(
            !r.triggered,
            "proactive idle work above the threshold is not a trigger"
        );
        // Draining via idle slices alone terminates.
        let mut guard = 0;
        while on.in_episode() {
            on.idle_collect(&mut array, &mut alloc, 0, 8, &mut CopyMigrator(&mut remap))
                .unwrap();
            guard += 1;
            assert!(guard < 10_000, "idle slices must make progress");
        }
        assert!(alloc.free_fraction() >= free, "idle GC reclaimed space");
    }

    #[test]
    fn policies_order_deterministically_and_skip_nothing() {
        let mk = |invalid, plane_idx, block, stamp| VictimCand {
            invalid,
            plane_idx,
            block,
            stamp,
        };
        let base = vec![
            mk(3, 0, 1, 10),
            mk(7, 0, 4, 2),
            mk(7, 1, 0, 5),
            mk(1, 1, 3, 0),
            mk(5, 2, 2, 7),
        ];
        for policy in [GcPolicy::Greedy, GcPolicy::CostBenefit, GcPolicy::Windowed] {
            let mut a = base.clone();
            let mut b = base.clone();
            order_victims(policy, 2, 8, &mut a);
            order_victims(policy, 2, 8, &mut b);
            assert_eq!(a, b, "{policy:?} is deterministic");
            let mut sorted_a = a.clone();
            sorted_a.sort_unstable_by_key(|c| (c.plane_idx, c.block));
            let mut sorted_base = base.clone();
            sorted_base.sort_unstable_by_key(|c| (c.plane_idx, c.block));
            assert_eq!(sorted_a, sorted_base, "{policy:?} permutes, never drops");
        }
        // Greedy: most-invalid first.
        let mut g = base.clone();
        order_victims(GcPolicy::Greedy, 2, 8, &mut g);
        assert!(g.windows(2).all(|w| w[0].invalid >= w[1].invalid));
        // Windowed: first pick is the greediest of the 2 oldest.
        let mut w = base.clone();
        order_victims(GcPolicy::Windowed, 2, 8, &mut w);
        assert_eq!(w[0], mk(7, 0, 4, 2), "greediest among stamps {{0, 2}}");
        // Cost-benefit: a fully-invalid old block beats a fresher fuller
        // one on benefit/cost.
        let mut cb = vec![mk(8, 0, 0, 0), mk(8, 0, 1, 9), mk(4, 0, 2, 1)];
        order_victims(GcPolicy::CostBenefit, 2, 8, &mut cb);
        assert_eq!(cb[0], mk(8, 0, 0, 0), "oldest free win scores highest");
    }

    #[test]
    fn gc_policy_labels_round_trip() {
        for p in [GcPolicy::Greedy, GcPolicy::CostBenefit, GcPolicy::Windowed] {
            assert_eq!(GcPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(GcPolicy::parse("nope"), None);
    }
}
