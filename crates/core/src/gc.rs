//! Greedy garbage collection (§2.1 of the paper).
//!
//! When the free-block fraction drops below the threshold (Table 1: 10 %),
//! GC repeatedly picks the fullest-of-invalid victim block, migrates its
//! valid pages (read + program on the chip timelines, so GC genuinely
//! delays host I/O), erases it and returns it to the allocator. Schemes
//! supply a remap callback that fixes their mapping tables from the
//! migrated pages' OOB tags.

use crate::recover::{lost_stamps_of, program_relocating, read_with_retry};
use aftl_flash::{Allocator, FlashArray, FlashError, Nanos, PageInfo, Ppn, Result, StreamId};
use serde::{Deserialize, Serialize};

/// GC tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcConfig {
    /// Trigger when the free-block fraction falls below this (Table 1: 0.10).
    pub threshold: f64,
    /// Keep reclaiming until the fraction exceeds `threshold + hysteresis`,
    /// so GC runs in episodes rather than once per write.
    pub hysteresis: f64,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            threshold: 0.10,
            hysteresis: 0.0005,
        }
    }
}

/// What one `maybe_gc` invocation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcReport {
    /// Whether the free-space threshold was breached at all.
    pub triggered: bool,
    /// Blocks erased and returned to the allocator.
    pub erased_blocks: u64,
    /// Valid pages migrated out of victim blocks.
    pub migrated_pages: u64,
    /// Victim blocks retired instead of reclaimed (erase failure or
    /// worn-out endurance budget). Their pages were migrated first, so no
    /// data is lost — only capacity.
    #[serde(default)]
    pub retired_blocks: u64,
    /// Migrated pages whose source read exhausted the retry ladder; the
    /// copy carries [`crate::recover::LOST_VERSION`] stamps.
    #[serde(default)]
    pub lost_pages: u64,
}

impl GcReport {
    /// Accumulate another invocation's report into this one.
    pub fn merge(&mut self, o: &GcReport) {
        self.triggered |= o.triggered;
        self.erased_blocks += o.erased_blocks;
        self.migrated_pages += o.migrated_pages;
        self.retired_blocks += o.retired_blocks;
        self.lost_pages += o.lost_pages;
    }
}

/// How a scheme relocates the valid pages of GC victims.
///
/// The default [`CopyMigrator`] copies pages one-to-one; schemes with
/// sub-page layouts (MRSM) provide their own migrator so sparse region
/// pages are *repacked* during collection instead of being copied sparse —
/// without this, sub-page fragmentation would permanently inflate the
/// valid-data footprint.
pub trait PageMigrator {
    /// Relocate one valid page (`old`, with OOB `info`). The implementation
    /// must issue the flash ops, invalidate `old`, and update its mapping
    /// state. Returns the number of pages programmed; source-read losses
    /// are recorded in `report.lost_pages`.
    fn migrate(
        &mut self,
        array: &mut FlashArray,
        alloc: &mut Allocator,
        now: Nanos,
        old: Ppn,
        info: &PageInfo,
        report: &mut GcReport,
    ) -> Result<u64>;

    /// Called once after the episode (flush any partially packed buffers).
    fn finish(
        &mut self,
        _array: &mut FlashArray,
        _alloc: &mut Allocator,
        _now: Nanos,
        _report: &mut GcReport,
    ) -> Result<u64> {
        Ok(0)
    }
}

/// The default migrator: one-to-one page copy plus a remap callback.
pub struct CopyMigrator<F>(pub F);

impl<F> PageMigrator for CopyMigrator<F>
where
    F: FnMut(&mut FlashArray, Ppn, Ppn, &PageInfo),
{
    fn migrate(
        &mut self,
        array: &mut FlashArray,
        alloc: &mut Allocator,
        now: Nanos,
        old: Ppn,
        info: &PageInfo,
        report: &mut GcReport,
    ) -> Result<u64> {
        let page_bytes = array.geometry().page_bytes;
        let r = read_with_retry(array, old, page_bytes, now, now)?;
        if r.is_lost() {
            report.lost_pages += 1;
        }
        // Stripe migrated pages across planes: the program (2 ms) dominates
        // the migration cost, and pinning it to the victim's chip would
        // serialise a whole block's migration on one chip, stalling host
        // I/O far beyond what SSDsim's per-plane GC exhibits.
        let (new_ppn, _) = program_relocating(
            array,
            alloc,
            StreamId::Gc,
            info.kind,
            info.tag,
            page_bytes,
            now,
            r.complete_ns(),
        )?;
        if array.tracks_content() {
            let stamps = if r.is_lost() {
                lost_stamps_of(array, old)
            } else {
                array.content_of(old).map(|s| s.to_vec().into_boxed_slice())
            };
            if let Some(stamps) = stamps {
                array.record_content(new_ppn, stamps);
            }
        }
        array.invalidate(old)?;
        (self.0)(array, old, new_ppn, info);
        Ok(1)
    }
}

/// Run a GC episode if needed. `remap(array, old, new, info)` must update
/// the scheme's mapping state for a page migrated from `old` to `new`
/// (identified by its OOB `info.kind`/`info.tag`).
pub fn maybe_collect<F>(
    array: &mut FlashArray,
    alloc: &mut Allocator,
    now: Nanos,
    cfg: &GcConfig,
    remap: F,
) -> Result<GcReport>
where
    F: FnMut(&mut FlashArray, Ppn, Ppn, &PageInfo),
{
    maybe_collect_with(array, alloc, now, cfg, &mut CopyMigrator(remap))
}

/// Run a GC episode with a scheme-provided [`PageMigrator`].
pub fn maybe_collect_with(
    array: &mut FlashArray,
    alloc: &mut Allocator,
    now: Nanos,
    cfg: &GcConfig,
    migrator: &mut dyn PageMigrator,
) -> Result<GcReport> {
    let mut report = GcReport::default();
    if alloc.free_fraction() >= cfg.threshold {
        return Ok(report);
    }
    report.triggered = true;
    let stop_at = cfg.threshold + cfg.hysteresis;

    // The victim list for the whole episode comes from the incrementally
    // maintained index (full blocks with reclaimable pages, retired blocks
    // already excluded), so episode startup is O(candidates), not
    // O(total blocks). Active blocks are excluded here (they are still
    // being programmed).
    //
    // Ordering: the index enumerates buckets, but victim order must stay
    // bit-identical to the historic full scan — first reconstruct that
    // scan's plane-major/block-ascending order, then apply the *same*
    // unstable most-invalid-first sort, which permutes identical input
    // identically.
    let mut candidates: Vec<(u32, u64, u32)> = Vec::with_capacity(array.victim_index().len());
    array.victim_index().for_each(|invalid, addr| {
        if !alloc.is_active(addr) {
            candidates.push((invalid, addr.plane_idx, addr.block));
        }
    });
    candidates.sort_unstable_by_key(|c| (c.1, c.2));

    // Debug oracle: the retired full scan must agree with the index.
    #[cfg(debug_assertions)]
    {
        array
            .check_victim_index()
            .expect("victim index consistent with block summaries");
        let mut scan: Vec<(u32, u64, u32)> = Vec::new();
        for plane in 0..array.geometry().total_planes() {
            for s in array.block_summaries(plane) {
                if s.full && s.invalid > 0 && !s.retired && !alloc.is_active(s.addr) {
                    scan.push((s.invalid, s.addr.plane_idx, s.addr.block));
                }
            }
        }
        assert_eq!(candidates, scan, "victim index diverged from full scan");
    }

    candidates.sort_unstable_by_key(|c| std::cmp::Reverse(c.0));

    let mut pages: Vec<(Ppn, PageInfo)> = Vec::new(); // per-victim scratch
    for (_, plane_idx, block) in candidates {
        if alloc.free_fraction() >= stop_at {
            break;
        }
        let victim = aftl_flash::BlockAddr { plane_idx, block };
        array.valid_pages_into(victim, &mut pages);
        for &(old_ppn, info) in &pages {
            let programs = migrator.migrate(array, alloc, now, old_ppn, &info, &mut report)?;
            report.migrated_pages += programs;
            array.note_gc_migration();
        }
        // Safe to erase before draining packed buffers: migrate() already
        // read the data and invalidated the source pages. A failed or
        // worn-out erase retires the victim instead of reclaiming it —
        // its valid data already moved, so only capacity shrinks.
        match array.erase(victim, now) {
            Ok(_) => {
                alloc.release_block(victim);
                report.erased_blocks += 1;
            }
            Err(FlashError::EraseFailed { .. }) | Err(FlashError::WornOut { .. }) => {
                report.retired_blocks += 1;
            }
            Err(e) => return Err(e),
        }
    }
    let programs = migrator.finish(array, alloc, now, &mut report)?;
    report.migrated_pages += programs;

    if alloc.free_fraction() < cfg.threshold && report.erased_blocks == 0 {
        // Nothing reclaimable: the device is genuinely full of valid data.
        return Err(FlashError::NoFreeBlocks);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aftl_flash::{Geometry, PageKind, TimingSpec};
    use std::collections::HashMap;

    /// Fill the device with single-LPN pages, overwriting to create
    /// invalid pages, then check GC reclaims space and remaps correctly.
    #[test]
    fn gc_reclaims_and_remaps() {
        let g = Geometry::tiny(); // 32 blocks × 8 pages
        let mut array = FlashArray::new(g, TimingSpec::unit()).unwrap();
        let mut alloc = Allocator::new(&array);
        let mut map: HashMap<u64, Ppn> = HashMap::new();

        // Keep writing a working set of 40 LPNs until free space dips
        // under the threshold; then GC must bring it back.
        // A large hysteresis forces episodes deep enough that GC must also
        // collect mixed blocks (cold pages among invalid ones) → migrations.
        let cfg = GcConfig {
            threshold: 0.25,
            hysteresis: 0.74, // reclaim everything reclaimable each episode
        };
        // Cold data first: these LPNs are never overwritten, so GC must
        // migrate them out of mostly-invalid victim blocks.
        for lpn in 20..40u64 {
            let ppn = alloc.alloc_page(&array, StreamId::Data).unwrap();
            array.program(ppn, PageKind::Data, lpn, 4096, 0, 0).unwrap();
            map.insert(lpn, ppn);
        }
        let mut writes = 0u64;
        for round in 0..2000u64 {
            let lpn = round % 20;
            let ppn = alloc.alloc_page(&array, StreamId::Data).unwrap();
            array.program(ppn, PageKind::Data, lpn, 4096, 0, 0).unwrap();
            if let Some(old) = map.insert(lpn, ppn) {
                array.invalidate(old).unwrap();
            }
            writes += 1;

            let rep = maybe_collect(&mut array, &mut alloc, 0, &cfg, |_, old, new, info| {
                assert_eq!(info.kind, PageKind::Data);
                let cur = map.get_mut(&info.tag).unwrap();
                assert_eq!(*cur, old, "GC must migrate the current copy");
                *cur = new;
            })
            .unwrap();
            if rep.triggered {
                assert!(alloc.free_fraction() >= cfg.threshold);
            }
        }
        assert!(writes == 2000);
        assert!(array.stats().erases > 0, "GC must have erased blocks");
        assert!(array.stats().gc_migrations > 0);
        // All 40 LPNs still resolvable and valid.
        for (_, ppn) in map {
            assert!(array.page_info(ppn).unwrap().is_valid());
        }
    }

    #[test]
    fn gc_noop_when_space_plentiful() {
        let g = Geometry::tiny();
        let mut array = FlashArray::new(g, TimingSpec::unit()).unwrap();
        let mut alloc = Allocator::new(&array);
        let rep = maybe_collect(
            &mut array,
            &mut alloc,
            0,
            &GcConfig::default(),
            |_, _, _, _| panic!("no migration expected"),
        )
        .unwrap();
        assert!(!rep.triggered);
        assert_eq!(rep.erased_blocks, 0);
    }

    #[test]
    fn gc_fails_when_everything_is_valid() {
        let g = Geometry::tiny();
        let mut array = FlashArray::new(g, TimingSpec::unit()).unwrap();
        let mut alloc = Allocator::new(&array);
        // Unique LPNs: nothing ever invalidated.
        let total = array.geometry().total_pages();
        for lpn in 0..(total * 95 / 100) {
            let ppn = alloc.alloc_page(&array, StreamId::Data).unwrap();
            array.program(ppn, PageKind::Data, lpn, 4096, 0, 0).unwrap();
        }
        let cfg = GcConfig {
            threshold: 0.20,
            hysteresis: 0.0,
        };
        let err = maybe_collect(&mut array, &mut alloc, 0, &cfg, |_, _, _, _| {}).unwrap_err();
        assert_eq!(err, FlashError::NoFreeBlocks);
    }

    #[test]
    fn gc_preserves_content_stamps() {
        let g = Geometry::tiny();
        let mut array = FlashArray::new(g, TimingSpec::unit()).unwrap();
        array.enable_content_tracking();
        let mut alloc = Allocator::new(&array);
        let mut map: HashMap<u64, Ppn> = HashMap::new();

        let cfg = GcConfig {
            threshold: 0.30,
            hysteresis: 0.05,
        };
        for round in 0..1500u64 {
            let lpn = round % 30;
            let ppn = alloc.alloc_page(&array, StreamId::Data).unwrap();
            array.program(ppn, PageKind::Data, lpn, 4096, 0, 0).unwrap();
            array.record_content(
                ppn,
                vec![
                    Some(aftl_flash::SectorStamp {
                        sector: lpn * 8,
                        version: round,
                    });
                    8
                ]
                .into_boxed_slice(),
            );
            if let Some(old) = map.insert(lpn, ppn) {
                array.invalidate(old).unwrap();
            }
            maybe_collect(&mut array, &mut alloc, 0, &cfg, |_, old, new, info| {
                let cur = map.get_mut(&info.tag).unwrap();
                assert_eq!(*cur, old);
                *cur = new;
            })
            .unwrap();
        }
        // Content must have followed the migrations.
        for (lpn, ppn) in map {
            let c = array.content_of(ppn).expect("migrated content present");
            assert_eq!(c[0].unwrap().sector, lpn * 8);
        }
    }
}
