//! # aftl-core — Across-FTL and comparator FTL schemes
//!
//! This crate implements the paper's contribution and both comparators on
//! top of the `aftl-flash` NAND substrate:
//!
//! * [`baseline`] — the conventional dynamic page-level mapping FTL. An
//!   across-page request costs two page operations; partial-page updates
//!   pay read-modify-write.
//! * [`across`] — **Across-FTL**: across-page requests are re-aligned onto
//!   a single physical page tracked by a second-level mapping table (AMT);
//!   overlapping updates are served by AMerge or ARollback (§3 of the
//!   paper).
//! * [`mrsm`] — the MRSM comparator (Chen et al., TCAD 2020): sub-page
//!   (quarter-page) mapping that overwrites sub-regions without
//!   read-modify-write, at the cost of a much larger, tree-structured
//!   mapping table.
//!
//! A fourth comparator goes beyond the paper's own set: [`learned`] —
//! piecewise-linear LPN→PPN models with predict-then-verify reads that
//! eliminate most translation-page "double reads" (LearnedFTL-style).
//!
//! Shared infrastructure: [`request`] (host requests and page extents),
//! [`mapping`] (page/across mapping tables and the DFTL-style DRAM mapping
//! cache that spills translation pages to flash), [`gc`] (preemptible,
//! policy-pluggable garbage collection with scheme remap callbacks and
//! idle background slices), [`counters`] (the event
//! counters behind the paper's Figures 8–12), [`oracle`] (a
//! sector-version mirror used by tests to prove read-your-writes across
//! remapping, merging, rollback and GC), [`recover`] (the read-retry
//! ladder and program-failure relocation every scheme uses when fault
//! injection is enabled), and [`recovery`] (rebuilding the mapping after a
//! sudden power-off from OOB journaling, optionally seeded by a
//! checkpoint).

#![warn(missing_docs)]

pub mod across;
pub mod baseline;
pub mod counters;
pub mod gc;
pub mod learned;
pub mod mapping;
pub mod mrsm;
pub mod obs;
pub mod oracle;
pub mod recover;
pub mod recovery;
pub mod request;
pub mod scheme;

pub use across::{AcrossFtl, AcrossOptions};
pub use baseline::BaselineFtl;
pub use counters::SchemeCounters;
pub use gc::{GcConfig, GcPolicy, GcReport, GcState, GcTuning};
pub use learned::{LearnedConfig, LearnedFtl, LearnedStats};
pub use mapping::cache::{CacheStats, MapCache};
pub use mapping::engine::{MapEngine, MapEngineStats, PipelineConfig};
pub use mrsm::MrsmFtl;
pub use obs::{SchemeEvent, SchemeEventKind};
pub use oracle::Oracle;
pub use recover::{program_relocating, read_with_retry, PageRead, LOST_VERSION};
pub use recovery::{
    recover as crash_recover, AreaImage, Checkpoint, MrsmNodeImage, RecoveryMode, RecoveryStats,
    SchemeImage,
};
pub use request::{HostRequest, PageExtent, ReqKind};
pub use scheme::{FtlEnv, FtlScheme, SchemeKind, ServiceOutcome};
