//! A sector-version mirror used by tests: every write records the expected
//! generation per sector, every read's [`crate::scheme::ServedSector`] list
//! is checked against it. This proves read-your-writes through across-page
//! remapping, AMerge, ARollback, read-modify-write and GC migration.

use std::collections::HashMap;

use crate::request::HostRequest;
use crate::scheme::ServedSector;

/// The expected state of the logical address space.
#[derive(Debug, Default)]
pub struct Oracle {
    expected: HashMap<u64, u64>,
    next_version: u64,
}

/// A mismatch between what a read served and what the oracle expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleViolation {
    /// The logical sector that was misread.
    pub sector: u64,
    /// Write generation the oracle expected.
    pub expected: u64,
    /// Write generation the device actually served.
    pub served: u64,
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sector {}: served version {} but expected {}",
            self.sector, self.served, self.expected
        )
    }
}

impl Oracle {
    /// An empty oracle (no sectors written yet).
    pub fn new() -> Self {
        Oracle {
            expected: HashMap::new(),
            next_version: 1,
        }
    }

    /// Stamp a write request with the next generation and record it.
    /// Call *before* handing the request to the scheme.
    pub fn stamp_write(&mut self, req: &mut HostRequest) {
        let version = self.next_version;
        self.next_version += 1;
        req.version = version;
        for s in req.sector..req.end_sector() {
            self.expected.insert(s, version);
        }
    }

    /// Check a read's provenance; returns every violation (empty = pass).
    pub fn check_read(&self, req: &HostRequest, served: &[ServedSector]) -> Vec<OracleViolation> {
        let mut violations = Vec::new();
        // Every requested sector must be reported exactly once.
        if served.len() as u64 != u64::from(req.sectors) {
            violations.push(OracleViolation {
                sector: req.sector,
                expected: u64::from(req.sectors),
                served: served.len() as u64,
            });
        }
        for s in served {
            let want = self.expected.get(&s.sector).copied().unwrap_or(0);
            if s.version != want {
                violations.push(OracleViolation {
                    sector: s.sector,
                    expected: want,
                    served: s.version,
                });
            }
        }
        violations
    }

    /// Number of distinct sectors ever written.
    pub fn written_sectors(&self) -> usize {
        self.expected.len()
    }

    /// Latest generation issued.
    pub fn current_version(&self) -> u64 {
        self.next_version - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_and_check_happy_path() {
        let mut o = Oracle::new();
        let mut w = HostRequest::write(0, 10, 2);
        o.stamp_write(&mut w);
        assert_eq!(w.version, 1);
        let r = HostRequest::read(0, 10, 2);
        let served = vec![
            ServedSector {
                sector: 10,
                version: 1,
            },
            ServedSector {
                sector: 11,
                version: 1,
            },
        ];
        assert!(o.check_read(&r, &served).is_empty());
    }

    #[test]
    fn stale_read_detected() {
        let mut o = Oracle::new();
        let mut w1 = HostRequest::write(0, 10, 2);
        o.stamp_write(&mut w1);
        let mut w2 = HostRequest::write(0, 10, 1);
        o.stamp_write(&mut w2);
        let r = HostRequest::read(0, 10, 2);
        // Sector 10 stale (v1 instead of v2).
        let served = vec![
            ServedSector {
                sector: 10,
                version: 1,
            },
            ServedSector {
                sector: 11,
                version: 1,
            },
        ];
        let v = o.check_read(&r, &served);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].sector, 10);
        assert_eq!(v[0].expected, 2);
    }

    #[test]
    fn missing_sector_detected() {
        let o = Oracle::new();
        let r = HostRequest::read(0, 0, 4);
        let served = vec![ServedSector {
            sector: 0,
            version: 0,
        }];
        assert!(!o.check_read(&r, &served).is_empty());
    }

    #[test]
    fn unwritten_sectors_expect_zero() {
        let o = Oracle::new();
        let r = HostRequest::read(0, 5, 1);
        let ok = vec![ServedSector {
            sector: 5,
            version: 0,
        }];
        assert!(o.check_read(&r, &ok).is_empty());
        let bad = vec![ServedSector {
            sector: 5,
            version: 3,
        }];
        assert_eq!(o.check_read(&r, &bad).len(), 1);
    }
}
