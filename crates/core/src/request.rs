//! Host requests and their decomposition into page-level extents
//! (the paper's "sub-requests", §2.1).

use aftl_flash::Nanos;
use serde::{Deserialize, Serialize};

/// Request direction (mirror of the trace crate's `IoOp`; `aftl-core` does
/// not depend on `aftl-trace`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReqKind {
    /// Host read.
    Read,
    /// Host write.
    Write,
}

/// A host block request in 512 B sectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostRequest {
    /// Issue time (nanoseconds on the simulation clock).
    pub at_ns: Nanos,
    /// First logical sector.
    pub sector: u64,
    /// Length in sectors (≥ 1).
    pub sectors: u32,
    /// Read or write.
    pub kind: ReqKind,
    /// Write-generation stamp used by the correctness oracle; 0 when
    /// content tracking is off.
    pub version: u64,
}

impl HostRequest {
    /// A write request (version 0; stamp via the oracle when tracking).
    pub fn write(at_ns: Nanos, sector: u64, sectors: u32) -> Self {
        HostRequest {
            at_ns,
            sector,
            sectors,
            kind: ReqKind::Write,
            version: 0,
        }
    }

    /// A read request.
    pub fn read(at_ns: Nanos, sector: u64, sectors: u32) -> Self {
        HostRequest {
            at_ns,
            sector,
            sectors,
            kind: ReqKind::Read,
            version: 0,
        }
    }

    /// Exclusive end sector.
    #[inline]
    pub fn end_sector(&self) -> u64 {
        self.sector + u64::from(self.sectors)
    }

    /// First logical page touched.
    #[inline]
    pub fn first_lpn(&self, spp: u32) -> u64 {
        self.sector / u64::from(spp)
    }

    /// Last logical page touched (inclusive).
    #[inline]
    pub fn last_lpn(&self, spp: u32) -> u64 {
        (self.end_sector() - 1) / u64::from(spp)
    }

    /// The paper's across-page predicate: at most one page of data spanning
    /// exactly two logical pages.
    #[inline]
    pub fn is_across_page(&self, spp: u32) -> bool {
        self.sectors <= spp && self.last_lpn(spp) == self.first_lpn(spp) + 1
    }

    /// Split into per-LPN extents (lazy; see [`split_extents`]).
    pub fn extents(&self, spp: u32) -> ExtentIter {
        split_extents(self.sector, self.end_sector(), spp)
    }
}

/// The part of a request that falls within one logical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageExtent {
    /// Logical page number the extent lies in.
    pub lpn: u64,
    /// First sector within the page (0-based).
    pub offset: u32,
    /// Sector count (1..=spp).
    pub len: u32,
}

impl PageExtent {
    /// Absolute first sector.
    #[inline]
    pub fn start_sector(&self, spp: u32) -> u64 {
        self.lpn * u64::from(spp) + u64::from(self.offset)
    }

    /// Absolute exclusive end sector.
    #[inline]
    pub fn end_sector(&self, spp: u32) -> u64 {
        self.start_sector(spp) + u64::from(self.len)
    }

    /// Whether the extent covers its whole page.
    #[inline]
    pub fn is_full_page(&self, spp: u32) -> bool {
        self.offset == 0 && self.len == spp
    }
}

/// Split an absolute sector range `[start, end)` into per-LPN extents.
pub fn split_extents(start: u64, end: u64, spp: u32) -> ExtentIter {
    assert!(end > start, "empty extent range");
    ExtentIter {
        cur: start,
        end,
        spp: u64::from(spp),
    }
}

/// Iterator over a sector range's per-page extents. Allocation-free: this
/// runs once per host request on the hot path, where a `Vec` would mean a
/// malloc/free pair per request.
#[derive(Debug, Clone)]
pub struct ExtentIter {
    cur: u64,
    end: u64,
    spp: u64,
}

impl Iterator for ExtentIter {
    type Item = PageExtent;

    #[inline]
    fn next(&mut self) -> Option<PageExtent> {
        if self.cur >= self.end {
            return None;
        }
        let lpn = self.cur / self.spp;
        let stop = self.end.min((lpn + 1) * self.spp);
        let extent = PageExtent {
            lpn,
            offset: (self.cur - lpn * self.spp) as u32,
            len: (stop - self.cur) as u32,
        };
        self.cur = stop;
        Some(extent)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.cur >= self.end {
            return (0, Some(0));
        }
        let n = ((self.end - 1) / self.spp - self.cur / self.spp + 1) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ExtentIter {}

#[cfg(test)]
mod tests {
    use super::*;

    const SPP: u32 = 16;

    #[test]
    fn across_predicate_matches_paper_example() {
        // write(1028K, 6K) = sectors 2056..2068.
        let r = HostRequest::write(0, 2056, 12);
        assert!(r.is_across_page(SPP));
        let ex: Vec<PageExtent> = r.extents(SPP).collect();
        assert_eq!(ex.len(), 2);
        assert_eq!(
            ex[0],
            PageExtent {
                lpn: 128,
                offset: 8,
                len: 8
            }
        );
        assert_eq!(
            ex[1],
            PageExtent {
                lpn: 129,
                offset: 0,
                len: 4
            }
        );
    }

    #[test]
    fn aligned_multi_page_split() {
        // write(1024K, 24K) = 3 full pages.
        let r = HostRequest::write(0, 2048, 48);
        assert!(!r.is_across_page(SPP));
        let ex: Vec<PageExtent> = r.extents(SPP).collect();
        assert_eq!(ex.len(), 3);
        assert!(ex.iter().all(|e| e.is_full_page(SPP)));
        assert_eq!(ex[0].lpn, 128);
        assert_eq!(ex[2].lpn, 130);
    }

    #[test]
    fn single_page_partial() {
        let r = HostRequest::read(0, 2056, 8);
        assert!(!r.is_across_page(SPP));
        let ex: Vec<PageExtent> = r.extents(SPP).collect();
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].offset, 8);
        assert_eq!(ex[0].len, 8);
        assert!(!ex[0].is_full_page(SPP));
    }

    #[test]
    fn unaligned_three_page_request_is_not_across() {
        // write(1028K, 20K): 40 sectors over 3 pages, larger than a page.
        let r = HostRequest::write(0, 2056, 40);
        assert!(!r.is_across_page(SPP));
        assert_eq!(r.extents(SPP).count(), 3);
    }

    #[test]
    fn extent_sector_roundtrip() {
        let e = PageExtent {
            lpn: 128,
            offset: 8,
            len: 8,
        };
        assert_eq!(e.start_sector(SPP), 2056);
        assert_eq!(e.end_sector(SPP), 2064);
    }

    #[test]
    fn split_covers_range_exactly() {
        for (start, end) in [(0u64, 1u64), (15, 17), (5, 100), (31, 33), (16, 32)] {
            let ex: Vec<PageExtent> = split_extents(start, end, SPP).collect();
            assert_eq!(ex[0].start_sector(SPP), start);
            assert_eq!(ex.last().unwrap().end_sector(SPP), end);
            // Contiguous, non-overlapping.
            for w in ex.windows(2) {
                assert_eq!(w[0].end_sector(SPP), w[1].start_sector(SPP));
            }
        }
    }
}
