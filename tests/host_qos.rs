//! Host-interface QoS properties: WRR arbitration against an
//! independently written reference model, bit-identical hosted runs for
//! a fixed seed, and exact queue-full backpressure accounting against a
//! hand-computed schedule.

use aftl_host::{
    run_host, Arbiter, Arbitration, ArrivalModel, HostConfig, IssueModel, QueuedDevice, Served,
    TenantConfig,
};
use aftl_sim::hosted::{run_hosted, tenants_from_trace};
use aftl_trace::{IoOp, IoRecord, Trace};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// WRR grants match an expanded-template reference model.
// ---------------------------------------------------------------------------

/// Reference WRR: the weight vector expanded into an explicit slot
/// template (`[4,2,1] → 0,0,0,0,1,1,2`) with a cyclic pointer; a grant
/// scans forward from the pointer, skipping slots whose queue is not
/// ready. Slots of one queue are contiguous, so "skip this slot" and
/// "forfeit the rest of the quantum" coincide — which is exactly the
/// claim the property test checks against the production state machine.
struct RefWrr {
    slots: Vec<usize>,
    pos: usize,
}

impl RefWrr {
    fn new(weights: &[u32]) -> Self {
        let slots: Vec<usize> = weights
            .iter()
            .enumerate()
            .flat_map(|(q, &w)| std::iter::repeat_n(q, w.max(1) as usize))
            .collect();
        RefWrr { slots, pos: 0 }
    }

    fn grant(&mut self, ready: &[bool]) -> Option<usize> {
        if !ready.iter().any(|&r| r) {
            return None;
        }
        loop {
            let q = self.slots[self.pos];
            self.pos = (self.pos + 1) % self.slots.len();
            if ready[q] {
                return Some(q);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wrr_grants_match_reference_model(
        (weights, masks) in (
            proptest::collection::vec(1u32..6, 2..5),
            proptest::collection::vec(0u8..16, 1..60),
        )
    ) {
        let mut arbiter = Arbiter::new(Arbitration::WeightedRoundRobin, &weights);
        let mut reference = RefWrr::new(&weights);
        for mask in masks {
            let ready: Vec<bool> =
                (0..weights.len()).map(|q| mask & (1 << q) != 0).collect();
            prop_assert_eq!(arbiter.grant(&ready), reference.grant(&ready));
        }
    }

    #[test]
    fn plain_rr_is_wrr_with_unit_weights(
        (weights, masks) in (
            proptest::collection::vec(1u32..9, 2..5),
            proptest::collection::vec(0u8..16, 1..40),
        )
    ) {
        let mut rr = Arbiter::new(Arbitration::RoundRobin, &weights);
        let mut reference = RefWrr::new(&vec![1; weights.len()]);
        for mask in masks {
            let ready: Vec<bool> =
                (0..weights.len()).map(|q| mask & (1 << q) != 0).collect();
            prop_assert_eq!(rr.grant(&ready), reference.grant(&ready));
        }
    }
}

// ---------------------------------------------------------------------------
// Hosted runs are a pure function of (config, tenants, seed).
// ---------------------------------------------------------------------------

fn contended_trace(n: u64) -> Trace {
    let records = (0..n)
        .map(|i| IoRecord {
            at_ns: i * 3_000,
            sector: (i * 11) % 4096,
            sectors: 4 + (i % 8) as u32,
            op: if i % 4 == 0 { IoOp::Read } else { IoOp::Write },
        })
        .collect();
    Trace::new("qos", records)
}

/// Everything except host wall-clock time must be bit-identical between
/// two hosted runs with the same seed — including the QoS section.
#[test]
fn hosted_run_reports_are_bit_identical_for_fixed_seed() {
    use serde::Value;

    let run = || {
        let mut config = aftl_sim::SimConfig::test_tiny(aftl_core::scheme::SchemeKind::Across);
        config.track_content = false;
        let tenants = tenants_from_trace(
            &contended_trace(300),
            3,
            IssueModel::Open(ArrivalModel::Poisson { mean_iat_ns: 5 }),
            8,
            &[4, 2, 1],
        );
        let host = HostConfig {
            arbitration: Arbitration::WeightedRoundRobin,
            device_inflight: 4,
            seed: 2024,
        };
        run_hosted(config, tenants, &host).unwrap()
    };

    fn strip_wall(v: &mut Value) {
        if let Value::Map(entries) = v {
            entries.retain(|(k, _)| k != "wall_seconds");
            for (_, v) in entries.iter_mut() {
                strip_wall(v);
            }
        } else if let Value::Seq(items) = v {
            for item in items {
                strip_wall(item);
            }
        }
    }

    let (a, b) = (run(), run());
    let (mut va, mut vb) = (serde_json::to_value(&a), serde_json::to_value(&b));
    strip_wall(&mut va);
    strip_wall(&mut vb);
    assert_eq!(
        serde_json::to_string_pretty(&va),
        serde_json::to_string_pretty(&vb),
        "hosted manifests must be bit-identical modulo wall-clock time"
    );
    let qos = a.qos.expect("hosted run carries QoS");
    assert_eq!(qos.tenants.len(), 3);
    assert!(
        qos.tenants.iter().any(|t| t.queue_full_stalls > 0),
        "5ns Poisson arrivals must overload depth-8 queues"
    );
}

// ---------------------------------------------------------------------------
// Queue-full backpressure accounting, verified against a hand-computed
// schedule on a deterministic serial device.
// ---------------------------------------------------------------------------

/// One command at a time, fixed 1000ns service — an M/D/1 server whose
/// whole schedule can be worked out by hand.
struct SerialDevice {
    busy_until: u64,
}

impl QueuedDevice for SerialDevice {
    fn submit(&mut self, now_ns: u64, _record: &IoRecord) -> Served {
        let start = self.busy_until.max(now_ns);
        self.busy_until = start + 1000;
        Served::Done {
            complete_ns: self.busy_until,
        }
    }
}

#[test]
fn queue_full_backpressure_accounting_is_exact() {
    // Five arrivals 100ns apart into a depth-1 queue on a 1000ns serial
    // device with inflight budget 1. Hand-computed schedule:
    //   completions at 1000, 2000, 3000, 4000, 5000;
    //   arrivals 200/300/400 block on the full queue until 1000/2000/3000,
    //   so 3 stall episodes totalling 800 + 1700 + 2600 = 5100ns.
    let trace = Trace::new(
        "bp",
        (0..5)
            .map(|i| IoRecord {
                at_ns: i * 100,
                sector: i * 8,
                sectors: 8,
                op: IoOp::Write,
            })
            .collect(),
    );
    let tenants = vec![TenantConfig {
        name: "bp".into(),
        trace,
        issue: IssueModel::Open(ArrivalModel::FixedInterval { interval_ns: 100 }),
        queue_depth: 1,
        weight: 1,
    }];
    let cfg = HostConfig {
        arbitration: Arbitration::RoundRobin,
        device_inflight: 1,
        seed: 0,
    };
    let mut device = SerialDevice { busy_until: 0 };
    let mut latencies = Vec::new();
    let out = run_host(&mut device, tenants, &cfg, |c| {
        latencies.push(c.complete_ns - c.arrival_ns);
    });

    let t = &out.tenants[0];
    assert_eq!(t.completed, 5);
    assert_eq!(t.queue.queue_full_stalls, 3, "arrivals 200/300/400 block");
    assert_eq!(t.queue.stalled_ns, 5100, "800 + 1700 + 2600");
    assert_eq!(t.queue.max_occupancy, 1);
    assert_eq!(out.span_ns, 5000);
    assert_eq!(
        latencies,
        vec![1000, 1900, 2800, 3700, 4600],
        "end-to-end latency is measured from the scheduled arrival"
    );
}

#[test]
fn backpressure_never_drops_or_reorders_within_a_tenant() {
    let trace = Trace::new(
        "ord",
        (0..50)
            .map(|i| IoRecord {
                at_ns: 0,
                sector: i * 8,
                sectors: 8,
                op: IoOp::Write,
            })
            .collect(),
    );
    let tenants = vec![TenantConfig {
        name: "ord".into(),
        trace,
        issue: IssueModel::Open(ArrivalModel::FixedInterval { interval_ns: 1 }),
        queue_depth: 2,
        weight: 1,
    }];
    let cfg = HostConfig {
        arbitration: Arbitration::RoundRobin,
        device_inflight: 1,
        seed: 0,
    };
    let mut device = SerialDevice { busy_until: 0 };
    let mut sectors = Vec::new();
    let out = run_host(&mut device, tenants, &cfg, |c| {
        sectors.push(c.record.sector)
    });
    assert_eq!(out.tenants[0].completed, 50);
    assert!(out.tenants[0].queue.queue_full_stalls > 0);
    let expected: Vec<u64> = (0..50).map(|i| i * 8).collect();
    assert_eq!(sectors, expected, "FIFO within a tenant survives stalls");
}
