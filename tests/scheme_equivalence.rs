//! All three FTL schemes are different *layouts* of the same logical
//! store: replaying an identical request sequence must yield identical
//! read contents on every scheme, even though their flash traffic differs.

use aftl_core::request::HostRequest;
use aftl_core::scheme::{SchemeKind, ServedSector};
use aftl_integration::small_ssd;
use aftl_sim::Ssd;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn served_sorted(done: &[ServedSector]) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = done.iter().map(|s| (s.sector, s.version)).collect();
    v.sort_unstable();
    v
}

fn drive(ssd: &mut Ssd, seed: u64, n: usize) -> Vec<Vec<(u64, u64)>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let spp = u64::from(ssd.spp());
    let span = ssd.logical_sectors() / 2;
    let mut reads = Vec::new();
    let mut version = 0u64;
    for i in 0..n {
        let sectors = rng.random_range(1..=(2 * spp as u32).min(24));
        let sector = rng.random_range(0..span - u64::from(sectors));
        if rng.random_bool(0.55) {
            version += 1;
            let mut w = HostRequest::write(i as u64, sector, sectors);
            w.version = version;
            ssd.submit(&w).unwrap();
        } else {
            let r = HostRequest::read(i as u64, sector, sectors);
            let done = ssd.submit(&r).unwrap();
            reads.push(served_sorted(&done.served));
        }
    }
    reads
}

#[test]
fn identical_reads_across_all_schemes() {
    let seed = 0xE9;
    let n = 6_000;
    let baseline = {
        let mut ssd = small_ssd(SchemeKind::Baseline);
        drive(&mut ssd, seed, n)
    };
    for scheme in [SchemeKind::Mrsm, SchemeKind::Across] {
        let mut ssd = small_ssd(scheme);
        let other = drive(&mut ssd, seed, n);
        assert_eq!(baseline.len(), other.len());
        for (i, (a, b)) in baseline.iter().zip(&other).enumerate() {
            assert_eq!(a, b, "read #{i} differs between FTL and {}", scheme.name());
        }
    }
}
