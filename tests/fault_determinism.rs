//! Fault injection is deterministic: the same [`FaultConfig`] seed and
//! operation sequence must produce byte-identical fault decisions — and
//! therefore byte-identical run manifests — across independent runs, so
//! any failing fault run can be replayed exactly.

use aftl_core::scheme::SchemeKind;
use aftl_flash::FaultConfig;
use aftl_sim::experiment::run_single_with;
use aftl_sim::{RunReport, SimConfig};
use aftl_trace::{IoOp, IoRecord, Trace};
use proptest::prelude::*;

fn synthetic_trace() -> Trace {
    let mut records = Vec::new();
    for i in 0..600u64 {
        records.push(IoRecord {
            at_ns: i * 8_000,
            sector: (i * 37) % 4096,
            sectors: 2 + (i % 12) as u32,
            op: if i % 3 == 0 { IoOp::Read } else { IoOp::Write },
        });
    }
    Trace {
        name: "determinism".into(),
        records,
    }
}

fn run_once(scheme: SchemeKind, fault_seed: u64) -> RunReport {
    let mut config = SimConfig::test_tiny(scheme);
    config.track_content = false;
    config.fault = FaultConfig {
        seed: fault_seed,
        read_fail_rate: 0.02,
        program_fail_rate: 0.005,
        erase_fail_rate: 0.005,
        ..FaultConfig::disabled()
    };
    let mut report = run_single_with(config, &synthetic_trace()).unwrap();
    // The only nondeterministic field is host wall clock; everything else
    // must match bit-for-bit.
    report.wall_seconds = 0.0;
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn same_seed_same_manifest(fault_seed in 1u64..1 << 48) {
        for scheme in SchemeKind::ALL {
            let a = run_once(scheme, fault_seed);
            let b = run_once(scheme, fault_seed);
            prop_assert!(
                a.flash.read_faults > 0,
                "{}: run must inject faults to prove anything",
                scheme.name()
            );
            // Identical seed must reproduce the manifest byte-for-byte.
            prop_assert_eq!(a.to_json(), b.to_json());
        }
    }

    #[test]
    fn different_seeds_diverge(fault_seed in 1u64..1 << 47) {
        // Not a tautology: the fault stream must actually depend on the
        // seed, not just on the operation sequence.
        let a = run_once(SchemeKind::Across, fault_seed);
        let b = run_once(SchemeKind::Across, fault_seed + 1);
        prop_assert!(
            a.to_json() != b.to_json(),
            "adjacent seeds produced identical manifests"
        );
    }
}
