//! Fleet-merge properties: the parallel fleet path must be a pure
//! function of `(config, trace, spec)` — identical to the sequential
//! single-thread merge for any shard count and seed, with the range
//! sharding covering the LPN space exactly (no gaps, no overlap, no
//! record lost or duplicated).

use aftl_core::scheme::SchemeKind;
use aftl_sim::fleet::{run_fleet, FleetSpec};
use aftl_sim::SimConfig;
use aftl_trace::{sector_ranges, IoOp, IoRecord, Trace};
use proptest::prelude::*;

fn tiny_config(scheme: SchemeKind) -> SimConfig {
    let mut config = SimConfig::test_tiny(scheme);
    config.track_content = false;
    config
}

/// Deterministic pseudo-random trace from a seed (splitmix64 streams) —
/// proptest supplies the seed, the generator keeps the records valid.
fn synth_trace(seed: u64, len: usize) -> Trace {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let records = (0..len)
        .map(|i| {
            let r = next();
            IoRecord {
                at_ns: (i as u64) * 2_000,
                sector: r % 4096,
                sectors: 1 + (r >> 32) as u32 % 16,
                op: if r % 4 == 0 { IoOp::Read } else { IoOp::Write },
            }
        })
        .collect();
    Trace::new("prop", records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The hard invariant of the fleet layer: for random shard counts,
    /// seeds and workloads, running the devices on worker threads and
    /// merging must equal running them one-by-one on this thread and
    /// merging — on every histogram, counter and QoS row.
    #[test]
    fn parallel_fleet_equals_sequential_merge(
        (devices, seed, trace_seed, len) in (
            1usize..=5,
            any::<u64>(),
            any::<u64>(),
            50usize..250,
        )
    ) {
        let trace = synth_trace(trace_seed, len);
        let mut spec = FleetSpec::new(devices);
        spec.host.seed = seed;

        let par = run_fleet(tiny_config(SchemeKind::Across), &trace, &spec).unwrap();
        spec.sequential = true;
        let seq = run_fleet(tiny_config(SchemeKind::Across), &trace, &spec).unwrap();

        prop_assert_eq!(par.requests, seq.requests);
        prop_assert_eq!(par.sim_span_ns, seq.sim_span_ns);
        prop_assert_eq!(&par.qos, &seq.qos);
        prop_assert_eq!(&par.fleet, &seq.fleet);
        prop_assert_eq!(
            serde_json::to_string(&par.flash),
            serde_json::to_string(&seq.flash)
        );
        prop_assert_eq!(
            serde_json::to_string(&par.counters),
            serde_json::to_string(&seq.counters)
        );
        prop_assert_eq!(
            serde_json::to_string(&par.latency),
            serde_json::to_string(&seq.latency)
        );
        prop_assert_eq!(
            serde_json::to_string(&par.classes),
            serde_json::to_string(&seq.classes)
        );
    }

    /// Consistent range sharding covers the sector space exactly: ranges
    /// tile `[0, span)` with no gap or overlap, and every trace record
    /// lands in exactly one shard.
    #[test]
    fn range_sharding_covers_lpn_space(
        (span, n, trace_seed) in (
            1u64..1_000_000,
            1usize..=32,
            any::<u64>(),
        )
    ) {
        let ranges = sector_ranges(span, n);
        prop_assert_eq!(ranges.len(), n);
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges[ranges.len() - 1].end, span);
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        // Balanced: shard lengths differ by at most one sector.
        let lens: Vec<u64> = ranges.iter().map(|r| r.len()).collect();
        let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        prop_assert!(max - min <= 1, "lens {:?}", lens);
        prop_assert_eq!(lens.iter().sum::<u64>(), span);

        // Every record routes to exactly one shard; totals conserved.
        let trace = synth_trace(trace_seed, 200);
        let shards = trace.shard_by_ranges(&ranges);
        prop_assert_eq!(shards.len(), n);
        prop_assert_eq!(
            shards.iter().map(|s| s.records.len()).sum::<usize>(),
            trace.records.len()
        );
        for (shard, range) in shards.iter().zip(&ranges) {
            for rec in &shard.records {
                // Records route by their *start* sector; strays beyond the
                // span land in the last shard by construction.
                if range.end < span {
                    prop_assert!(rec.sector < range.end);
                }
                if range.start > 0 {
                    prop_assert!(rec.sector >= range.start);
                }
            }
        }
    }
}
