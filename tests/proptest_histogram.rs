//! Property-based checks of the observability histogram: merging two
//! histograms must behave exactly like recording the union of their sample
//! streams, merged quantiles must be bounded by the inputs' quantiles, and
//! every reported quantile must sit within the documented ~3 % relative
//! error below the exact sample quantile.

use aftl_sim::observe::hist::LatencyHistogram;
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Exact `q`-quantile (ceil-rank order statistic) of a sample set.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

const QS: [f64; 5] = [0.1, 0.5, 0.9, 0.99, 1.0];

fn check_merge(a_vals: &[u64], b_vals: &[u64]) -> Result<(), TestCaseError> {
    let a = hist_of(a_vals);
    let b = hist_of(b_vals);
    let mut merged = a.clone();
    merged.merge(&b);

    // Merging is exactly recording the union.
    let mut union_vals: Vec<u64> = a_vals.iter().chain(b_vals).copied().collect();
    let union = hist_of(&union_vals);
    prop_assert_eq!(&merged, &union);
    prop_assert_eq!(merged.count(), (a_vals.len() + b_vals.len()) as u64);
    prop_assert_eq!(
        merged.min_ns(),
        a_vals.iter().chain(b_vals).copied().min().unwrap()
    );
    prop_assert_eq!(
        merged.max_ns(),
        a_vals.iter().chain(b_vals).copied().max().unwrap()
    );

    union_vals.sort_unstable();
    let mut prev = 0u64;
    for q in QS {
        let qa = a.quantile(q);
        let qb = b.quantile(q);
        let qm = merged.quantile(q);

        // Merged quantiles are bounded by the inputs' quantiles: never
        // above the larger, and never meaningfully below the smaller
        // (one sub-bucket of slack covers bucket-floor rounding).
        let lo = qa.min(qb);
        prop_assert!(
            qm >= lo.saturating_sub(lo / 16 + 1),
            "q{q}: merged {qm} far below min(input) {lo}"
        );
        prop_assert!(
            qm <= qa.max(qb),
            "q{q}: merged {qm} above max(input) {}",
            qa.max(qb)
        );

        // Reported quantiles sit within the documented error of the exact
        // sample quantile: never above it, at most ~3 % (one sub-bucket,
        // plus 1 for integer truncation) below it.
        let exact = exact_quantile(&union_vals, q);
        prop_assert!(qm <= exact, "q{q}: merged {qm} above exact {exact}");
        prop_assert!(
            qm >= exact.saturating_sub(exact / 32 + 1),
            "q{q}: merged {qm} more than a bucket below exact {exact}"
        );

        // Quantiles are monotone in q.
        prop_assert!(qm >= prev, "q{q}: {qm} < previous {prev}");
        prev = qm;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_quantiles_bound_inputs(
        (a, b) in (
            proptest::collection::vec(0u64..50_000_000, 1..300),
            proptest::collection::vec(0u64..50_000_000, 1..300),
        )
    ) {
        check_merge(&a, &b)?;
    }

    #[test]
    fn merge_quantiles_bound_inputs_disjoint_ranges(
        (a, b) in (
            proptest::collection::vec(0u64..1_000, 1..100),
            proptest::collection::vec(1_000_000_000u64..2_000_000_000, 1..100),
        )
    ) {
        // Disjoint value ranges stress the bounding property hardest: the
        // merged quantile must move between the two clusters as q sweeps.
        check_merge(&a, &b)?;
    }
}
