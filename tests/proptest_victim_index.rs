//! Property-based check of the incremental GC victim index: under arbitrary
//! program/invalidate/erase/retire sequences — both raw flash-array ops and
//! full scheme workloads with fault injection — the index must always agree
//! with a from-scratch scan of every block summary
//! ([`FlashArray::check_victim_index`]).

use aftl_core::oracle::Oracle;
use aftl_core::request::HostRequest;
use aftl_core::scheme::SchemeKind;
use aftl_flash::{BlockAddr, FaultConfig, FlashArray, Geometry, PageKind, TimingSpec};
use aftl_integration::small_ssd_with_faults;
use proptest::prelude::*;

/// One raw flash operation, interpreted against the array's current state.
#[derive(Debug, Clone, Copy)]
enum RawOp {
    /// Program the next free page of block `pick % blocks`.
    Program(u64),
    /// Invalidate the `pick`-th currently valid page (tracked externally).
    Invalidate(u64),
    /// Erase the `pick`-th block with no valid pages.
    Erase(u64),
    /// Retire block `pick % blocks`.
    Retire(u64),
}

fn raw_op_strategy() -> impl Strategy<Value = RawOp> {
    (0u8..=9, any::<u64>()).prop_map(|(kind, pick)| match kind {
        // Weight programs and invalidates heavily so blocks actually fill
        // and become victims; keep retirement rare so the array survives.
        0..=3 => RawOp::Program(pick),
        4..=7 => RawOp::Invalidate(pick),
        8 => RawOp::Erase(pick),
        _ => RawOp::Retire(pick),
    })
}

/// Replay raw ops against a tiny array, asserting index/scan agreement
/// after every mutation.
fn run_raw_ops(ops: &[RawOp]) -> Result<(), TestCaseError> {
    let g = Geometry::tiny();
    let mut array = FlashArray::new(g, TimingSpec::unit()).unwrap();
    let blocks: Vec<BlockAddr> = (0..g.total_planes())
        .flat_map(|plane| {
            (0..g.blocks_per_plane).map(move |block| BlockAddr {
                plane_idx: plane,
                block,
            })
        })
        .collect();
    let mut valid: Vec<aftl_flash::Ppn> = Vec::new();

    for (i, op) in ops.iter().enumerate() {
        match *op {
            RawOp::Program(pick) => {
                let addr = blocks[(pick % blocks.len() as u64) as usize];
                if let Some(page) = array.next_free_page(addr) {
                    let ppn = array.ppn_in_block(addr, page);
                    array
                        .program(ppn, PageKind::Data, i as u64, g.page_bytes, 0, 0)
                        .unwrap();
                    valid.push(ppn);
                }
            }
            RawOp::Invalidate(pick) => {
                if !valid.is_empty() {
                    let ppn = valid.swap_remove((pick % valid.len() as u64) as usize);
                    array.invalidate(ppn).unwrap();
                }
            }
            RawOp::Erase(pick) => {
                let erasable: Vec<BlockAddr> = blocks
                    .iter()
                    .copied()
                    .filter(|&a| {
                        let s = array.block_summary(a);
                        !s.retired && s.valid == 0 && s.invalid > 0
                    })
                    .collect();
                if !erasable.is_empty() {
                    let addr = erasable[(pick % erasable.len() as u64) as usize];
                    array.erase(addr, 0).unwrap();
                }
            }
            RawOp::Retire(pick) => {
                let addr = blocks[(pick % blocks.len() as u64) as usize];
                // Drop the retired block's pages from our valid pool: they
                // stay Valid in the array but this harness stops using them,
                // mirroring an FTL migrating off a bad block.
                valid.retain(|&p| array.block_addr_of(p) != addr);
                array.retire_block(addr);
            }
        }
        if let Err(msg) = array.check_victim_index() {
            return Err(TestCaseError::fail(format!("after op {i} {op:?}: {msg}")));
        }
    }
    Ok(())
}

/// Drive a request mix through a full SSD (GC, translation-page spills and
/// fault-driven retirement included) and cross-check the index along the way.
fn run_scheme_ops(scheme: SchemeKind, ops: &[(bool, u64, u32)]) -> Result<(), TestCaseError> {
    let faults = FaultConfig {
        seed: 7,
        program_fail_rate: 0.002,
        erase_fail_rate: 0.002,
        ..FaultConfig::disabled()
    };
    let mut ssd = small_ssd_with_faults(scheme, faults);
    let mut oracle = Oracle::new();
    for (i, &(write, sector, sectors)) in ops.iter().enumerate() {
        if write {
            let mut w = HostRequest::write(i as u64, sector, sectors);
            oracle.stamp_write(&mut w);
            ssd.submit(&w).unwrap();
        } else {
            ssd.submit(&HostRequest::read(i as u64, sector, sectors))
                .unwrap();
        }
        if i % 16 == 0 {
            if let Err(msg) = ssd.array().check_victim_index() {
                return Err(TestCaseError::fail(format!(
                    "{} after req {i}: {msg}",
                    scheme.name()
                )));
            }
        }
    }
    if let Err(msg) = ssd.array().check_victim_index() {
        return Err(TestCaseError::fail(format!(
            "{} at end: {msg}",
            scheme.name()
        )));
    }
    Ok(())
}

fn req_strategy() -> impl Strategy<Value = (bool, u64, u32)> {
    // Narrow span: lots of overwrites, so GC runs and blocks cycle through
    // free → open → full-victim → erased repeatedly.
    (any::<bool>(), 0u64..2048, 1u32..=24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn raw_ops_keep_index_consistent(ops in proptest::collection::vec(raw_op_strategy(), 1..600)) {
        run_raw_ops(&ops)?;
    }

    #[test]
    fn baseline_workload_keeps_index_consistent(
        ops in proptest::collection::vec(req_strategy(), 1..250))
    {
        run_scheme_ops(SchemeKind::Baseline, &ops)?;
    }

    #[test]
    fn mrsm_workload_keeps_index_consistent(
        ops in proptest::collection::vec(req_strategy(), 1..250))
    {
        run_scheme_ops(SchemeKind::Mrsm, &ops)?;
    }

    #[test]
    fn across_workload_keeps_index_consistent(
        ops in proptest::collection::vec(req_strategy(), 1..250))
    {
        run_scheme_ops(SchemeKind::Across, &ops)?;
    }
}
