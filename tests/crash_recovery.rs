//! Crash-point sweep: sudden power-off at many seeded flash-op
//! boundaries, recovery, and the acknowledged-write oracle — on all four
//! schemes.
//!
//! Two angles:
//! * a deterministic sweep of 50+ crash points per scheme, dense enough
//!   that the cut demonstrably lands in every interesting place — inside
//!   a host write (torn OOB group), inside the multi-page realignment
//!   path of an across-page write, and inside a post-ack GC episode.
//!   Every single point must recover with zero lost acknowledged sectors
//!   and no torn request exposed;
//! * a proptest over random (crash point, workload seed, scheme) tuples,
//!   so the oracle is also exercised off the sweep's grid.
//!
//! The per-point verdict comes from [`aftl_sim::crash::run_crash_point`]:
//! power-cycle, OOB-journal rebuild, then a read-back of every
//! acknowledged sector through the rebuilt scheme.

use aftl_core::scheme::SchemeKind;
use aftl_sim::config::CrashConfig;
use aftl_sim::crash::run_crash_point;
use aftl_sim::SimConfig;
use proptest::prelude::*;

/// Crash points per scheme in the deterministic sweep (the issue floor).
const SWEEP_POINTS: u64 = 50;

/// Host writes driven per crash point: enough that the workload outlasts
/// the sweep's largest budget on every scheme (so all 50 cuts fire), with
/// enough overwrite churn on the tiny device that GC triggers inside the
/// budget range.
const SWEEP_WRITES: u64 = 800;

fn crash_config(scheme: SchemeKind, crash_at: u64, checkpoint_every: Option<u64>) -> SimConfig {
    let mut config = SimConfig::test_tiny(scheme);
    config.crash = CrashConfig {
        crash_at: Some(crash_at),
        recover: true,
        checkpoint_every,
    };
    config
}

/// Sweep `SWEEP_POINTS` crash budgets for one scheme and demand a clean
/// recovery at every single one. Returns coverage counters so the caller
/// can assert the sweep actually hit the interesting cut sites.
fn sweep(scheme: SchemeKind, checkpoint_every: Option<u64>) -> (u64, u64, u64, u64) {
    let spp = u64::from(SimConfig::test_tiny(scheme).geometry.page_bytes / 512);
    let (mut fired, mut mid_write, mut mid_realign, mut mid_gc) = (0u64, 0u64, 0u64, 0u64);
    // Budgets 40, 80, ... 2000: from "barely past the first writes" to
    // "deep into GC churn", step small enough to land inside multi-page
    // request programs.
    for point in 1..=SWEEP_POINTS {
        let crash_at = point * 40;
        let config = crash_config(scheme, crash_at, checkpoint_every);
        let out = run_crash_point(&config, SWEEP_WRITES, 0x5EED ^ point)
            .unwrap_or_else(|e| panic!("{} @ {crash_at}: {e:?}", scheme.name()));
        assert_eq!(
            out.lost_sectors,
            0,
            "{} @ {crash_at}: lost {} acknowledged sectors",
            scheme.name(),
            out.lost_sectors
        );
        assert!(
            !out.torn_exposed,
            "{} @ {crash_at}: torn request became visible",
            scheme.name()
        );
        assert!(
            out.verified_sectors > 0,
            "{} @ {crash_at}: verified nothing",
            scheme.name()
        );
        fired += u64::from(out.fired);
        mid_write += u64::from(out.cut_mid_write);
        mid_realign += u64::from(out.torn_extent.is_some_and(|(_, n)| u64::from(n) > spp));
        mid_gc += u64::from(out.cut_during_gc);
    }
    (fired, mid_write, mid_realign, mid_gc)
}

fn assert_coverage(scheme: SchemeKind, checkpoint_every: Option<u64>) {
    let (fired, mid_write, mid_realign, mid_gc) = sweep(scheme, checkpoint_every);
    let name = scheme.name();
    // The sweep is only meaningful if the cut really fires at (almost)
    // every budget — SWEEP_WRITES outlasts the largest budget by design.
    assert_eq!(
        fired, SWEEP_POINTS,
        "{name}: every budget must cut mid-workload"
    );
    assert!(mid_write > 0, "{name}: no cut landed inside a host write");
    assert!(
        mid_realign > 0,
        "{name}: no cut landed mid-realignment (inside an across-page write)"
    );
    assert!(mid_gc > 0, "{name}: no cut landed inside a GC episode");
}

#[test]
fn sweep_baseline_recovers_every_crash_point() {
    assert_coverage(SchemeKind::Baseline, None);
}

#[test]
fn sweep_mrsm_recovers_every_crash_point() {
    assert_coverage(SchemeKind::Mrsm, None);
}

#[test]
fn sweep_across_recovers_every_crash_point() {
    assert_coverage(SchemeKind::Across, None);
}

#[test]
fn sweep_learned_recovers_every_crash_point() {
    assert_coverage(SchemeKind::Learned, None);
}

/// The checkpointed rebuild must pass the same oracle at every crash
/// point — a checkpoint that forgot the delta (or replayed a stale
/// journal entry over a newer write) would surface here as a lost
/// sector. One scheme suffices: checkpoint/delta arbitration is
/// scheme-independent, and the four scan sweeps above already cover the
/// per-scheme rebuild paths.
#[test]
fn sweep_with_checkpoints_recovers_every_crash_point() {
    assert_coverage(SchemeKind::Across, Some(25));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random crash points off the sweep grid, random workload seeds,
    /// all four schemes: recovery must never lose an acknowledged write
    /// or expose a torn request.
    #[test]
    fn random_crash_points_recover_clean(
        (crash_at, seed, scheme_idx, checkpointed)
            in (40u64..2_400, 0u64..1 << 32, 0usize..4, any::<bool>())) {
        let scheme = SchemeKind::WITH_LEARNED[scheme_idx];
        let every = checkpointed.then_some(30);
        let out = run_crash_point(&crash_config(scheme, crash_at, every), 300, seed)
            .expect("crash run completes");
        prop_assert_eq!(out.lost_sectors, 0);
        prop_assert!(!out.torn_exposed);
        prop_assert!(out.verified_sectors > 0);
    }
}
