//! Garbage-collection endurance: a small device overwritten many times its
//! capacity must keep reclaiming space, never corrupt data, and spread
//! wear reasonably.

use aftl_core::oracle::Oracle;
use aftl_core::request::HostRequest;
use aftl_core::scheme::SchemeKind;
use aftl_flash::stats::WearHistogram;
use aftl_integration::small_ssd;

#[test]
fn sustained_overwrite_five_times_capacity() {
    for scheme in SchemeKind::ALL {
        let mut ssd = small_ssd(scheme);
        let mut oracle = Oracle::new();
        let spp = u64::from(ssd.spp());
        let working_pages = ssd.scheme().logical_pages() / 3;
        let total_pages = ssd.array().geometry().total_pages();
        let writes = total_pages * 5;
        for i in 0..writes {
            let lpn = (i * 7919) % working_pages; // co-prime stride
            let mut w = HostRequest::write(i, lpn * spp, spp as u32);
            oracle.stamp_write(&mut w);
            ssd.submit(&w).unwrap();
        }
        let stats = ssd.array().stats();
        assert!(
            stats.erases as f64 > total_pages as f64 * 3.0 / 32.0,
            "{}: erases {} too low for {} writes",
            scheme.name(),
            stats.erases,
            writes
        );
        // Wear must be spread: max/mean bounded (greedy GC + striping).
        let wear = WearHistogram::from_counts(ssd.array().erase_counts());
        assert!(
            (wear.max as f64) < wear.mean * 6.0 + 10.0,
            "{}: wear skew max {} mean {:.1}",
            scheme.name(),
            wear.max,
            wear.mean
        );
        // Spot-check data integrity after all that churn.
        for lpn in (0..working_pages).step_by(17) {
            let r = HostRequest::read(writes + lpn, lpn * spp, spp as u32);
            let done = ssd.submit(&r).unwrap();
            let v = oracle.check_read(&r, &done.served);
            assert!(v.is_empty(), "{}: {:?}", scheme.name(), v);
        }
    }
}

#[test]
fn device_full_of_valid_data_errors_cleanly() {
    let mut ssd = small_ssd(SchemeKind::Across);
    let spp = u64::from(ssd.spp());
    // Write unique pages until the device refuses: must be NoFreeBlocks,
    // never a panic or corruption.
    let mut lpn = 0u64;
    let err = loop {
        let w = HostRequest::write(lpn, lpn * spp, spp as u32);
        match ssd.submit(&w) {
            Ok(_) => lpn += 1,
            Err(e) => break e,
        }
        assert!(
            lpn <= ssd.scheme().logical_pages(),
            "should fill before logical end"
        );
    };
    assert_eq!(err, aftl_flash::FlashError::NoFreeBlocks);
}
