//! Fig8 small-config parity: host-side performance work must never change
//! what the simulation *computes*.
//!
//! The golden digests under `tests/golden/fig8_small_digest.json` were
//! captured **before** the replay hot-path overhaul (incremental GC victim
//! index, flat content arena, slab LRU cache). Every scheme's replay of the
//! fig8-small workload must still produce bit-identical simulated results —
//! flash op counts, GC work, cache stats, latency sums, the simulated span.
//!
//! To re-bless after an *intentional* behaviour change (e.g. a scheme
//! change, never a data-structure swap):
//!
//! ```text
//! AFTL_BLESS=1 cargo test --release -p aftl-integration --test fig8_parity
//! ```

use aftl_bench::replay::{self, ReplayDigest};
use aftl_core::scheme::SchemeKind;

const GOLDEN_PATH: &str = "../../tests/golden/fig8_small_digest.json";

fn run_digests() -> Vec<ReplayDigest> {
    let trace = replay::fig8_small_trace(replay::FIG8_SMALL_SCALE);
    SchemeKind::ALL
        .iter()
        .map(|&s| ReplayDigest::of(&replay::run_fig8_small(s, &trace)))
        .collect()
}

#[test]
fn fig8_small_matches_pre_optimization_golden() {
    let digests = run_digests();

    if std::env::var_os("AFTL_BLESS").is_some() {
        let json = serde_json::to_string_pretty(&digests).expect("digests serialize");
        std::fs::write(GOLDEN_PATH, json).expect("write golden digest");
        eprintln!("blessed {GOLDEN_PATH}");
        return;
    }

    let text = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden digest present (bless with AFTL_BLESS=1 after intentional changes)");
    let golden: Vec<ReplayDigest> = serde_json::from_str(&text).expect("golden digest parses");

    assert_eq!(golden.len(), digests.len(), "scheme count changed");
    for (want, got) in golden.iter().zip(&digests) {
        assert_eq!(
            want, got,
            "{}: simulated results drifted from the pre-optimization golden",
            got.scheme
        );
    }
}
