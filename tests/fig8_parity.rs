//! Fig8 small-config parity: host-side performance work must never change
//! what the simulation *computes*.
//!
//! The golden digests under `tests/golden/fig8_small_digest.json` were
//! captured **before** the replay hot-path overhaul (incremental GC victim
//! index, flat content arena, slab LRU cache). Every scheme's replay of the
//! fig8-small workload must still produce bit-identical simulated results —
//! flash op counts, GC work, cache stats, latency sums, the simulated span.
//!
//! To re-bless after an *intentional* behaviour change (e.g. a scheme
//! change, never a data-structure swap):
//!
//! ```text
//! AFTL_BLESS=1 cargo test --release -p aftl-integration --test fig8_parity
//! ```

use aftl_bench::replay::{self, ReplayDigest};
use aftl_core::scheme::SchemeKind;
use aftl_host::{Arbitration, HostConfig, IssueModel};
use aftl_sim::fleet::{run_fleet, FleetSpec};
use aftl_sim::hosted::{run_hosted, tenants_from_trace};

const GOLDEN_PATH: &str = "../../tests/golden/fig8_small_digest.json";

fn run_digests() -> Vec<ReplayDigest> {
    let trace = replay::fig8_small_trace(replay::FIG8_SMALL_SCALE);
    SchemeKind::ALL
        .iter()
        .map(|&s| ReplayDigest::of(&replay::run_fig8_small(s, &trace)))
        .collect()
}

#[test]
fn fig8_small_matches_pre_optimization_golden() {
    let digests = run_digests();

    if std::env::var_os("AFTL_BLESS").is_some() {
        let json = serde_json::to_string_pretty(&digests).expect("digests serialize");
        std::fs::write(GOLDEN_PATH, json).expect("write golden digest");
        eprintln!("blessed {GOLDEN_PATH}");
        return;
    }

    let text = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden digest present (bless with AFTL_BLESS=1 after intentional changes)");
    let golden: Vec<ReplayDigest> = serde_json::from_str(&text).expect("golden digest parses");

    assert_eq!(golden.len(), digests.len(), "scheme count changed");
    for (want, got) in golden.iter().zip(&digests) {
        assert_eq!(
            want, got,
            "{}: simulated results drifted from the pre-optimization golden",
            got.scheme
        );
    }
}

/// [`ReplayDigest::flash_side`]: the digest minus the two fields that
/// legitimately depend on *when* requests reach the device (host-side
/// pacing or pipelined issue). Everything else — flash ops, GC work,
/// cache stats, chip-busy time (a pure sum of op durations), DRAM
/// accesses — is a function of request order and content only, so the
/// hosted path must reproduce it exactly.
fn flash_side(d: ReplayDigest) -> ReplayDigest {
    d.flash_side()
}

/// The pipelined map engine reorders *issue times*, never flash work:
/// with `--pipeline` on, every scheme's replay must still match the
/// pre-optimization golden digest on the flash side — op counts, GC
/// work, chip-busy time, the full cache counter set, DRAM accesses.
/// Only `latency_sum_ns` and `sim_span_ns` may move.
#[test]
fn pipelined_replay_matches_golden_flash_side() {
    let trace = replay::fig8_small_trace(replay::FIG8_SMALL_SCALE);
    let text = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden digest present (bless with AFTL_BLESS=1 after intentional changes)");
    let golden: Vec<ReplayDigest> = serde_json::from_str(&text).expect("golden digest parses");

    for (i, &scheme) in SchemeKind::ALL.iter().enumerate() {
        let piped = ReplayDigest::of(&replay::run_fig8_small_with(scheme, &trace, true));
        assert_eq!(
            golden[i].flash_side(),
            piped.flash_side(),
            "{}: pipelined replay changed flash-side behaviour",
            scheme.name()
        );
    }
}

/// A single closed-loop tenant behind the multi-queue host front end
/// must be the replay path with different request timestamps: identical
/// flash-side counters on every scheme, and therefore identical to the
/// pre-optimization golden digest as well.
#[test]
fn hosted_single_tenant_matches_replay_flash_side() {
    let trace = replay::fig8_small_trace(replay::FIG8_SMALL_SCALE);
    let host = HostConfig {
        arbitration: Arbitration::RoundRobin,
        device_inflight: 8,
        seed: 42,
    };

    let golden: Option<Vec<ReplayDigest>> = std::fs::read_to_string(GOLDEN_PATH)
        .ok()
        .map(|text| serde_json::from_str(&text).expect("golden digest parses"));

    for (i, &scheme) in SchemeKind::ALL.iter().enumerate() {
        let replayed = flash_side(ReplayDigest::of(&replay::run_fig8_small(scheme, &trace)));
        let tenants =
            tenants_from_trace(&trace, 1, IssueModel::Closed { outstanding: 8 }, 32, &[1]);
        let report = run_hosted(replay::fig8_small_config(scheme), tenants, &host)
            .expect("hosted fig8-small run succeeds");
        let mut hosted = flash_side(ReplayDigest::of(&report));
        // The hosted run is named after its tenant shard; the digest
        // comparison is about counters, not labels.
        assert_eq!(report.trace, format!("hosted:{}.s0", trace.name));
        hosted.scheme = replayed.scheme.clone();
        assert_eq!(
            replayed,
            hosted,
            "{}: hosted single-tenant run diverged from replay on flash-side counters",
            scheme.name()
        );
        if let Some(golden) = &golden {
            assert_eq!(
                flash_side(golden[i].clone()),
                hosted,
                "{}: hosted run diverged from the pre-optimization golden",
                scheme.name()
            );
        }
    }
}

/// A 1-device fleet is the hosted run — not approximately: the unsharded
/// trace takes the same path with the same seeds, so every digest field
/// (latency sums and simulated span included) must be bit-identical, and
/// therefore match the pre-optimization golden on the flash side too.
#[test]
fn fleet_single_device_matches_hosted_run_bit_for_bit() {
    let trace = replay::fig8_small_trace(replay::FIG8_SMALL_SCALE);
    let host = HostConfig {
        arbitration: Arbitration::RoundRobin,
        device_inflight: 8,
        seed: 42,
    };
    let spec = FleetSpec {
        devices: 1,
        host,
        issue: IssueModel::Closed { outstanding: 8 },
        queue_depth: 32,
        tenants_per_device: 1,
        weights: vec![1],
        sequential: false,
    };

    let golden: Option<Vec<ReplayDigest>> = std::fs::read_to_string(GOLDEN_PATH)
        .ok()
        .map(|text| serde_json::from_str(&text).expect("golden digest parses"));

    for (i, &scheme) in SchemeKind::ALL.iter().enumerate() {
        let fleet_report = run_fleet(replay::fig8_small_config(scheme), &trace, &spec)
            .expect("fleet fig8-small run succeeds");
        let tenants =
            tenants_from_trace(&trace, 1, IssueModel::Closed { outstanding: 8 }, 32, &[1]);
        let hosted_report = run_hosted(replay::fig8_small_config(scheme), tenants, &host)
            .expect("hosted fig8-small run succeeds");

        assert_eq!(
            fleet_report.trace, hosted_report.trace,
            "1-device fleet keeps the hosted run name"
        );
        assert_eq!(
            ReplayDigest::of(&fleet_report),
            ReplayDigest::of(&hosted_report),
            "{}: 1-device fleet diverged from the hosted run",
            scheme.name()
        );
        assert_eq!(fleet_report.qos, hosted_report.qos);
        if let Some(golden) = &golden {
            let mut fleet_digest = flash_side(ReplayDigest::of(&fleet_report));
            fleet_digest.scheme = golden[i].scheme.clone();
            assert_eq!(
                flash_side(golden[i].clone()),
                fleet_digest,
                "{}: 1-device fleet diverged from the pre-optimization golden",
                scheme.name()
            );
        }
    }
}
