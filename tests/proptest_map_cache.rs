//! Property-based equivalence of the slab/intrusive-list [`MapCache`] with a
//! straightforward reference model of the old stamp-ordered (`BTreeMap`)
//! implementation: under arbitrary access traces the hit/miss/load/flush
//! counters, residency and flash-copy counts must match exactly.

use std::collections::HashSet;

use aftl_core::mapping::cache::MapCache;
use aftl_flash::{Allocator, FlashArray, GeometryBuilder, TimingSpec};
use proptest::prelude::*;

/// The old implementation in miniature: residents keyed by tpid with an
/// LRU stamp, evicting the smallest stamp; dirty evictions flush to flash.
/// Timing and flash traffic are out of scope — only the observable cache
/// behaviour (what hits, what loads, what flushes) is modelled.
#[derive(Default)]
struct ModelCache {
    capacity: usize,
    resident: Vec<(u64, bool, u64)>, // (tpid, dirty, stamp)
    next_stamp: u64,
    flash: HashSet<u64>,
    lookups: u64,
    hits: u64,
    misses: u64,
    loads: u64,
    flushes: u64,
}

impl ModelCache {
    fn new(capacity: usize) -> Self {
        ModelCache {
            capacity: capacity.max(1),
            ..ModelCache::default()
        }
    }

    fn access(&mut self, tpid: u64, make_dirty: bool) {
        self.lookups += 1;
        if let Some(e) = self.resident.iter_mut().find(|e| e.0 == tpid) {
            self.hits += 1;
            e.1 |= make_dirty;
            e.2 = self.next_stamp;
            self.next_stamp += 1;
            return;
        }
        self.misses += 1;
        while self.resident.len() >= self.capacity {
            let victim = self
                .resident
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .map(|(i, _)| i)
                .expect("cache full ⇒ nonempty");
            let (vt, vd, _) = self.resident.swap_remove(victim);
            if vd {
                self.flushes += 1;
                self.flash.insert(vt);
            }
        }
        let dirty = if self.flash.contains(&tpid) {
            self.loads += 1;
            make_dirty
        } else {
            true // first touch materialises dirty
        };
        self.resident.push((tpid, dirty, self.next_stamp));
        self.next_stamp += 1;
    }

    fn flush_all(&mut self) {
        for e in &mut self.resident {
            if e.1 {
                self.flushes += 1;
                self.flash.insert(e.0);
                e.1 = false;
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum CacheOp {
    Access { tpid: u64, dirty: bool },
    FlushAll,
}

fn cache_op_strategy() -> impl Strategy<Value = CacheOp> {
    (0u8..=19, 0u64..16, any::<bool>()).prop_map(|(kind, tpid, dirty)| {
        if kind == 0 {
            CacheOp::FlushAll
        } else {
            CacheOp::Access { tpid, dirty }
        }
    })
}

/// A flash device big enough that map-page flushes never exhaust free space
/// (this harness runs no GC).
fn backing() -> (FlashArray, Allocator) {
    let g = GeometryBuilder::new()
        .channels(2)
        .chips_per_channel(2)
        .dies_per_chip(1)
        .planes_per_die(2)
        .blocks_per_plane(16)
        .pages_per_block(32)
        .page_bytes(4096)
        .build()
        .expect("valid geometry");
    let array = FlashArray::new(g, TimingSpec::unit()).unwrap();
    let alloc = Allocator::new(&array);
    (array, alloc)
}

fn run_trace(capacity: usize, ops: &[CacheOp]) -> Result<(), TestCaseError> {
    let (mut array, mut alloc) = backing();
    let mut cache = MapCache::new(capacity);
    let mut model = ModelCache::new(capacity);
    for (i, op) in ops.iter().enumerate() {
        match *op {
            CacheOp::Access { tpid, dirty } => {
                cache
                    .access(&mut array, &mut alloc, 0, tpid, dirty)
                    .unwrap();
                model.access(tpid, dirty);
            }
            CacheOp::FlushAll => {
                cache.flush_all(&mut array, &mut alloc, 0).unwrap();
                model.flush_all();
            }
        }
        let s = cache.stats();
        let got = (s.lookups, s.hits, s.misses, s.loads, s.flushes);
        let want = (
            model.lookups,
            model.hits,
            model.misses,
            model.loads,
            model.flushes,
        );
        prop_assert!(
            got == want,
            "stats diverged after op {} {:?} (capacity {}): got {:?}, want {:?}",
            i,
            op,
            capacity,
            got,
            want
        );
        prop_assert_eq!(cache.resident_tpages(), model.resident.len());
        prop_assert_eq!(cache.flash_tpages(), model.flash.len());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn slab_cache_matches_reference_model(
        case in (1usize..=6, proptest::collection::vec(cache_op_strategy(), 1..300)))
    {
        let (capacity, ops) = case;
        run_trace(capacity, &ops)?;
    }

    /// Degenerate single-slot cache: every distinct access evicts; the
    /// richest source of flush/load interleavings.
    #[test]
    fn single_slot_cache_matches_reference_model(
        ops in proptest::collection::vec(cache_op_strategy(), 1..200))
    {
        run_trace(1, &ops)?;
    }
}
