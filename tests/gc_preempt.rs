//! Property-based checks of the preemptible, policy-pluggable GC:
//!
//! * **Victim policies never select a fully-valid block**: under any
//!   candidate population, `order_victims` places every zero-invalid
//!   candidate after every reclaimable one, for all three policies —
//!   erasing a fully-valid block would copy a whole block to free
//!   nothing.
//! * **Preemption is invisible at episode end**: an episode interrupted
//!   by an arbitrary page budget and resumed to completion leaves the
//!   device in exactly the state the atomic collector produces — same
//!   mapping, same free blocks, same flash op counts — for every policy
//!   and window size.

use aftl_core::gc::{order_victims, CopyMigrator, GcConfig, GcReport, GcState, VictimCand};
use aftl_core::{GcPolicy, GcTuning};
use aftl_flash::{Allocator, FlashArray, Geometry, PageInfo, PageKind, Ppn, StreamId, TimingSpec};
use proptest::prelude::*;
use std::collections::HashMap;

const POLICIES: [GcPolicy; 3] = [GcPolicy::Greedy, GcPolicy::CostBenefit, GcPolicy::Windowed];

fn cand_strategy(pages_per_block: u32) -> impl Strategy<Value = VictimCand> {
    (0u32..=pages_per_block, 0u64..8, 0u32..64, 0u64..1000).prop_map(
        |(invalid, plane_idx, block, stamp)| VictimCand {
            invalid,
            plane_idx,
            block,
            stamp,
        },
    )
}

/// A churned tiny device in the shape of the gc.rs unit fixture: a cold
/// stream (never overwritten) interleaved with a hot 30-LPN churn, enough
/// writes that every plane carries mixed-validity victim blocks.
fn churned_device(writes: u64) -> (FlashArray, Allocator, HashMap<u64, Ppn>) {
    let g = Geometry::tiny();
    let mut array = FlashArray::new(g, TimingSpec::unit()).unwrap();
    let mut alloc = Allocator::new(&array);
    let mut map: HashMap<u64, Ppn> = HashMap::new();
    let mut cold = 1000u64;
    for round in 0..writes {
        let lpn = if round % 9 == 3 {
            cold += 1;
            cold
        } else {
            round % 30
        };
        let ppn = alloc.alloc_page(&array, StreamId::Data).unwrap();
        array.program(ppn, PageKind::Data, lpn, 4096, 0, 0).unwrap();
        if let Some(old) = map.insert(lpn, ppn) {
            array.invalidate(old).unwrap();
        }
    }
    (array, alloc, map)
}

/// Drive one triggered episode to completion in budgeted slices; returns
/// (merged report, slices taken).
fn drain(
    state: &mut GcState,
    array: &mut FlashArray,
    alloc: &mut Allocator,
    map: &mut HashMap<u64, Ppn>,
) -> (GcReport, u32) {
    let mut total = GcReport::default();
    let mut slices = 0u32;
    loop {
        let r = state
            .maybe_collect(
                array,
                alloc,
                0,
                &mut CopyMigrator(|_: &mut FlashArray, old, new, info: &PageInfo| {
                    let cur = map.get_mut(&info.tag).unwrap();
                    assert_eq!(*cur, old);
                    *cur = new;
                }),
            )
            .unwrap();
        total.merge(&r);
        slices += 1;
        if !state.in_episode() {
            return (total, slices);
        }
        assert!(slices < 10_000, "episode must make progress");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn policies_never_order_a_fully_valid_block_first(
        (mut cands, window) in (proptest::collection::vec(cand_strategy(8), 1..80), 1u32..12)
    ) {
        // The episode builder hands order_victims a plane-major,
        // block-ascending scan with unique (plane, block) keys.
        cands.sort_unstable_by_key(|c| (c.plane_idx, c.block));
        cands.dedup_by_key(|c| (c.plane_idx, c.block));
        for policy in POLICIES {
            let mut ordered = cands.clone();
            order_victims(policy, window, 8, &mut ordered);
            let first_full = ordered.iter().position(|c| c.invalid == 0);
            let last_reclaimable = ordered.iter().rposition(|c| c.invalid > 0);
            if let (Some(full), Some(reclaim)) = (first_full, last_reclaimable) {
                prop_assert!(
                    full > reclaim,
                    "{:?}: fully-valid candidate at {} precedes reclaimable at {}",
                    policy,
                    full,
                    reclaim
                );
            }
        }
    }

    #[test]
    fn interrupted_episodes_resume_to_the_atomic_end_state(
        (budget, policy_pick, window, writes) in (1u32..16, 0usize..3, 1u32..8, 400u64..460)
    ) {
        let policy = POLICIES[policy_pick];
        let run = |preempt_pages: u32| {
            let (mut array, mut alloc, mut map) = churned_device(writes);
            let mut state = GcState::new(GcConfig {
                threshold: 0.30,
                hysteresis: 0.10,
                tuning: GcTuning {
                    policy,
                    preempt_pages,
                    window,
                    // The churned device sits below threshold × default
                    // urgent_ratio; keep the budget in force so preemption
                    // actually happens (urgency is covered in unit tests).
                    urgent_ratio: 0.0,
                    ..GcTuning::default()
                },
            });
            let (report, slices) = drain(&mut state, &mut array, &mut alloc, &mut map);
            let mut mapping: Vec<(u64, Ppn)> = map.into_iter().collect();
            mapping.sort_unstable();
            (
                (
                    report.erased_blocks,
                    report.migrated_pages,
                    alloc.free_blocks(),
                    array.stats().erases,
                    array.stats().gc_migrations,
                    mapping,
                ),
                report,
                slices,
            )
        };
        let (atomic, _, atomic_slices) = run(0);
        let (preempted, preempted_report, preempted_slices) = run(budget);
        prop_assert_eq!(atomic, preempted);
        prop_assert!(preempted_slices >= atomic_slices);
        // A budget smaller than the episode's copy count must pause at
        // least once, and each pause is visible in the merged report.
        if preempted_slices > 1 {
            prop_assert!(preempted_report.preemptions > 0);
        }
    }
}
