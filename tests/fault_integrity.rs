//! Fault-injection integrity: with seeded transient read/program/erase
//! faults enabled, every acknowledged write must stay readable with its
//! last-written content — or be explicitly accounted for as an
//! acknowledged loss ([`LOST_VERSION`]) or a rejected write on a
//! read-only device. Never silent corruption, on any scheme.

use std::collections::HashMap;

use aftl_core::request::{HostRequest, ReqKind};
use aftl_core::scheme::SchemeKind;
use aftl_core::LOST_VERSION;
use aftl_flash::{FaultConfig, FlashError};
use aftl_integration::small_ssd_with_faults;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn faulty_config(fault_seed: u64) -> FaultConfig {
    FaultConfig {
        seed: fault_seed,
        read_fail_rate: 0.02,
        program_fail_rate: 0.01,
        erase_fail_rate: 0.01,
        ..FaultConfig::disabled()
    }
}

/// Drive `n` seeded random requests through a fault-injected device,
/// shadowing content versions on the side. A served sector must carry its
/// last *acknowledged* version — or the version of a write the device
/// rejected mid-flight (the one transition write may be partially
/// applied), or the explicit [`LOST_VERSION`] marker. Anything else is
/// silent corruption and fails the test.
fn faulty_workload(
    scheme: SchemeKind,
    fault_seed: u64,
    workload_seed: u64,
    n: usize,
) -> Result<(), TestCaseError> {
    let mut ssd = small_ssd_with_faults(scheme, faulty_config(fault_seed));
    let mut rng = SmallRng::seed_from_u64(workload_seed);
    let spp = u64::from(ssd.spp());
    let span_sectors = ssd.logical_sectors() * 6 / 10;

    let mut committed: HashMap<u64, u64> = HashMap::new();
    let mut tentative: HashMap<u64, u64> = HashMap::new();
    let mut next_version = 0u64;
    for i in 0..n {
        let sectors = *[1u32, 2, 4, 6, 8, 10, 12, 16]
            .iter()
            .filter(|&&z| u64::from(z) <= 2 * spp)
            .nth(rng.random_range(0..6))
            .unwrap();
        let sector = rng.random_range(0..span_sectors - u64::from(sectors));
        if rng.random_bool(0.6) {
            let mut req = HostRequest::write(i as u64, sector, sectors);
            next_version += 1;
            req.version = next_version;
            match ssd.submit(&req) {
                Ok(_) => {
                    for s in req.sector..req.end_sector() {
                        committed.insert(s, next_version);
                        tentative.remove(&s);
                    }
                }
                // The write that trips read-only mode may have reached
                // flash for some of its sectors before the allocator ran
                // dry: those sectors legitimately serve this version.
                Err(FlashError::ReadOnlyMode) => {
                    for s in req.sector..req.end_sector() {
                        tentative.insert(s, next_version);
                    }
                }
                Err(e) => return Err(TestCaseError::fail(format!("write failed: {e}"))),
            }
        } else {
            let req = HostRequest::read(i as u64, sector, sectors);
            let done = ssd
                .submit(&req)
                .map_err(|e| TestCaseError::fail(format!("read failed: {e}")))?;
            prop_assert_eq!(done.served.len(), sectors as usize);
            for s in &done.served {
                let want = committed.get(&s.sector).copied().unwrap_or(0);
                let tent = tentative.get(&s.sector).copied();
                prop_assert!(
                    s.version == want || Some(s.version) == tent || s.version == LOST_VERSION,
                    "{}: sector {} served version {} (committed {}, tentative {:?})",
                    scheme.name(),
                    s.sector,
                    s.version,
                    want,
                    tent
                );
            }
        }
    }
    // The run must actually have exercised the fault machinery.
    let stats = ssd.array().stats();
    prop_assert!(
        stats.read_faults + stats.program_faults + stats.erase_faults > 0,
        "no faults injected: {:?}",
        stats
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn baseline_integrity_under_faults(seeds in (1u64..1 << 48, any::<u64>())) {
        faulty_workload(SchemeKind::Baseline, seeds.0, seeds.1, 1500)?;
    }

    #[test]
    fn mrsm_integrity_under_faults(seeds in (1u64..1 << 48, any::<u64>())) {
        faulty_workload(SchemeKind::Mrsm, seeds.0, seeds.1, 1500)?;
    }

    #[test]
    fn across_ftl_integrity_under_faults(seeds in (1u64..1 << 48, any::<u64>())) {
        faulty_workload(SchemeKind::Across, seeds.0, seeds.1, 1500)?;
    }
}

/// Spare-block exhaustion degrades to read-only instead of panicking:
/// writes are rejected with a typed error, reads keep serving the data
/// written before the transition.
#[test]
fn spare_threshold_degrades_to_read_only() {
    let fault = FaultConfig {
        min_spare_blocks: 64, // half of the 128-block device
        ..FaultConfig::disabled()
    };
    let mut ssd = small_ssd_with_faults(SchemeKind::Across, fault);
    let spp = u64::from(ssd.spp());
    let mut last_ok: Option<(u64, u64)> = None; // (sector, version)
    let mut rejected = false;
    for i in 0..20_000u64 {
        let mut req = HostRequest::write(i, (i * spp) % (spp * 512), spp as u32);
        req.version = i + 1;
        match ssd.submit(&req) {
            Ok(_) => last_ok = Some((req.sector, req.version)),
            Err(FlashError::ReadOnlyMode) => {
                rejected = true;
                break;
            }
            Err(e) => panic!("unexpected write error: {e}"),
        }
    }
    assert!(rejected, "device never entered read-only mode");
    assert!(ssd.read_only());
    assert!(ssd.write_rejections() > 0);

    // Reads still work and serve the acknowledged content.
    let (sector, version) = last_ok.expect("some write succeeded");
    let read = HostRequest::read(0, sector, spp as u32);
    let done = ssd.submit(&read).expect("reads survive read-only mode");
    assert_eq!(done.kind, ReqKind::Read);
    assert!(
        done.served.iter().all(|s| s.version == version),
        "read-only device must still serve acknowledged data: {:?}",
        done.served
    );

    // Writes keep failing with the typed error, and each is counted.
    let before = ssd.write_rejections();
    let mut w = HostRequest::write(0, 0, spp as u32);
    w.version = u64::MAX - 2;
    assert!(matches!(ssd.submit(&w), Err(FlashError::ReadOnlyMode)));
    assert_eq!(ssd.write_rejections(), before + 1);
}

/// A finite erase-endurance budget wears blocks out for real: sustained
/// overwrites retire them via [`FlashError::WornOut`] and the device ends
/// up read-only rather than panicking.
#[test]
fn endurance_exhaustion_wears_out_blocks() {
    let fault = FaultConfig {
        erase_endurance: 4,
        ..FaultConfig::disabled()
    };
    let mut ssd = small_ssd_with_faults(SchemeKind::Baseline, fault);
    let spp = u64::from(ssd.spp());
    let footprint = 256u64; // pages, repeatedly overwritten to force GC
    let mut version = 0u64;
    'outer: for round in 0..200u64 {
        for p in 0..footprint {
            let mut req = HostRequest::write(round, p * spp, spp as u32);
            version += 1;
            req.version = version;
            match ssd.submit(&req) {
                Ok(_) => {}
                Err(FlashError::ReadOnlyMode) => break 'outer,
                Err(e) => panic!("unexpected write error: {e}"),
            }
        }
    }
    let stats = ssd.array().stats();
    assert!(
        stats.worn_out_blocks > 0,
        "endurance budget never triggered: {stats:?}"
    );
    assert_eq!(stats.worn_out_blocks, stats.retired_blocks);
    assert!(ssd.read_only(), "worn-out device must degrade to read-only");
    // Reads still succeed on the worn-out device.
    let read = HostRequest::read(0, 0, spp as u32);
    ssd.submit(&read).expect("reads survive wear-out");
}
