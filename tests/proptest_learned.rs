//! Learned-vs-baseline read parity: the learned scheme is a different
//! *lookup* strategy over the same logical store — predictions are
//! verified against the on-flash LPN tag and fall back to the PMT, so
//! replaying an identical request sequence must serve bit-identical data
//! on both schemes, request by request.
//!
//! Three angles:
//! * arbitrary write/read mixes (proptest, faults off): strict equality
//!   of every read's served sectors, both devices also checked against
//!   the shared write oracle;
//! * sustained overwrite churn past device capacity: GC repacks (sorted
//!   on the learned device, in-order on the baseline) must preserve
//!   parity through relocation and model retraining;
//! * seeded transient faults on both devices: fault decisions depend on
//!   each scheme's own flash-operation sequence, so the schemes may lose
//!   different pages — but every served sector must carry its oracle
//!   version or the explicit [`LOST_VERSION`] marker, and wherever both
//!   devices served real data the versions must agree. Never silent
//!   corruption, never divergence hidden behind a fault.

use std::collections::HashMap;

use aftl_core::oracle::Oracle;
use aftl_core::request::{HostRequest, ReqKind};
use aftl_core::scheme::{SchemeKind, ServedSector};
use aftl_core::LOST_VERSION;
use aftl_flash::{FaultConfig, FlashError};
use aftl_integration::small_ssd_config;
use aftl_sim::Ssd;
use proptest::prelude::*;

/// [`aftl_integration::small_ssd`] with the mapping cache squeezed to a
/// single resident translation page. The stock helper's cache holds the
/// whole PMT, and under the CMT-first lookup order a fully resident PMT
/// means the model never fires — this device actually misses, so reads
/// are served by verified predictions too, not just the fallback path.
fn pressured_ssd(scheme: SchemeKind, fault: FaultConfig) -> Ssd {
    let mut config = small_ssd_config(scheme, fault);
    config.scheme_cfg.cache_bytes = u64::from(config.geometry.page_bytes);
    Ssd::new(config).expect("device")
}

#[derive(Debug, Clone)]
struct Op {
    write: bool,
    sector: u64,
    sectors: u32,
}

fn op_strategy(span: u64) -> impl Strategy<Value = Op> {
    (any::<bool>(), 0..span - 40, 1u32..=24).prop_map(|(write, sector, sectors)| Op {
        write,
        sector,
        sectors,
    })
}

fn sorted(served: &[ServedSector]) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = served.iter().map(|s| (s.sector, s.version)).collect();
    v.sort_unstable();
    v
}

/// Drive the same (oracle-stamped) ops through a baseline and a learned
/// device, demanding bit-identical served sectors on every read and a
/// clean oracle verdict on both.
fn run_parity(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut ftl = pressured_ssd(SchemeKind::Baseline, FaultConfig::disabled());
    let mut learned = pressured_ssd(SchemeKind::Learned, FaultConfig::disabled());
    let mut oracle = Oracle::new();
    for (i, op) in ops.iter().enumerate() {
        let req = if op.write {
            let mut w = HostRequest::write(i as u64, op.sector, op.sectors);
            oracle.stamp_write(&mut w);
            w
        } else {
            HostRequest::read(i as u64, op.sector, op.sectors)
        };
        let a = ftl.submit(&req).unwrap();
        let b = learned.submit(&req).unwrap();
        if req.kind == ReqKind::Read {
            prop_assert!(
                a.served == b.served,
                "op {i}: learned served different data: {:?} vs {:?}",
                a.served,
                b.served
            );
            for (name, done) in [("FTL", &a), ("Learned-FTL", &b)] {
                let violations = oracle.check_read(&req, &done.served);
                prop_assert!(
                    violations.is_empty(),
                    "{name}: op {i} violated the oracle: {violations:?}"
                );
            }
        }
    }
    Ok(())
}

/// Sustained overwrite past device capacity on both schemes: GC must run
/// on each (erases > 0), the learned device's sorted repack included, and
/// a full read sweep afterwards must stay bit-identical and oracle-clean.
#[test]
fn gc_churn_learned_equals_baseline() {
    let mut ftl = pressured_ssd(SchemeKind::Baseline, FaultConfig::disabled());
    let mut learned = pressured_ssd(SchemeKind::Learned, FaultConfig::disabled());
    let mut oracle = Oracle::new();
    let spp = u64::from(ftl.spp());
    // A translation page maps 1024 LPNs here, so 3/4 of the logical span
    // covers three tpages — the one-tpage cache has to juggle them while
    // GC has its 10 % headroom plus the unwritten tail to work with.
    let working_pages = ftl.scheme().logical_pages() * 3 / 4;
    let writes = ftl.array().geometry().total_pages() * 2;
    for i in 0..writes {
        // Co-prime stride over the working set; a partial-write minority
        // keeps read-modify-write on both write paths.
        let lpn = (i * 7919) % working_pages;
        let (sector, sectors) = if i % 5 == 0 {
            (lpn * spp + 1, (spp / 2) as u32)
        } else {
            (lpn * spp, spp as u32)
        };
        let mut w = HostRequest::write(i, sector, sectors);
        oracle.stamp_write(&mut w);
        ftl.submit(&w).unwrap();
        learned.submit(&w).unwrap();
    }
    assert!(ftl.snapshot().flash.erases > 0, "FTL churn must trigger GC");
    assert!(
        learned.snapshot().flash.erases > 0,
        "learned churn must trigger GC"
    );
    // Sweep the working set in the same co-prime stride order: successive
    // reads land on different translation pages, so the one-tpage cache
    // would charge a map-in for most of them — prediction territory.
    for j in 0..working_pages {
        let lpn = (j * 7919) % working_pages;
        let r = HostRequest::read(writes + j, lpn * spp, spp as u32);
        let a = ftl.submit(&r).unwrap();
        let b = learned.submit(&r).unwrap();
        assert_eq!(a.served, b.served, "read of lpn {lpn} diverged after GC");
        assert!(
            oracle.check_read(&r, &b.served).is_empty(),
            "lpn {lpn}: learned read violated the oracle after GC"
        );
    }
    let st = learned.snapshot().learned;
    assert_eq!(st.mispredicts, 0, "exact models never mis-predict");
    assert!(
        st.predict_hits > 0,
        "the pressured cache must have let the model serve reads"
    );
}

/// Same op stream through both schemes with seeded transient faults on
/// each. The two devices issue different flash-operation sequences, so
/// the injector's decisions — and therefore which pages end up lost —
/// may differ; the contract is per-device integrity (served version is
/// the last acknowledged one, a rejected write's, or [`LOST_VERSION`])
/// plus agreement wherever both devices served real data.
fn run_faulty_parity(fault_seed: u64, ops: &[Op]) -> Result<(), TestCaseError> {
    let fault = FaultConfig {
        seed: fault_seed,
        read_fail_rate: 0.02,
        program_fail_rate: 0.01,
        erase_fail_rate: 0.01,
        ..FaultConfig::disabled()
    };
    let mut ftl = pressured_ssd(SchemeKind::Baseline, fault);
    let mut learned = pressured_ssd(SchemeKind::Learned, fault);
    let mut committed: HashMap<u64, u64> = HashMap::new();
    let mut tentative: [HashMap<u64, u64>; 2] = [HashMap::new(), HashMap::new()];
    let mut version = 0u64;
    for (i, op) in ops.iter().enumerate() {
        if op.write {
            let mut req = HostRequest::write(i as u64, op.sector, op.sectors);
            version += 1;
            req.version = version;
            let mut acked = [false; 2];
            for (d, ssd) in [&mut ftl, &mut learned].into_iter().enumerate() {
                match ssd.submit(&req) {
                    Ok(_) => acked[d] = true,
                    // A write rejected mid-flight may be partially applied
                    // on that device only.
                    Err(FlashError::ReadOnlyMode) => {
                        for s in req.sector..req.end_sector() {
                            tentative[d].insert(s, version);
                        }
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("write failed: {e}"))),
                }
            }
            if acked[0] && acked[1] {
                for s in req.sector..req.end_sector() {
                    committed.insert(s, version);
                    tentative[0].remove(&s);
                    tentative[1].remove(&s);
                }
            } else {
                // Acknowledged on one device only: that device serves the
                // new version, the other the old one — track per device.
                for (d, ok) in acked.iter().enumerate() {
                    if *ok {
                        for s in req.sector..req.end_sector() {
                            tentative[d].insert(s, version);
                        }
                    }
                }
            }
        } else {
            let req = HostRequest::read(i as u64, op.sector, op.sectors);
            let a = sorted(&ftl.submit(&req).unwrap().served);
            let b = sorted(&learned.submit(&req).unwrap().served);
            prop_assert_eq!(a.len(), b.len());
            for (d, served) in [&a, &b].into_iter().enumerate() {
                let name = ["FTL", "Learned-FTL"][d];
                for &(sector, got) in served.iter() {
                    let want = committed.get(&sector).copied().unwrap_or(0);
                    let tent = tentative[d].get(&sector).copied();
                    prop_assert!(
                        got == want || Some(got) == tent || got == LOST_VERSION,
                        "{name}: op {i} sector {sector} served v{got} \
                         (committed {want}, tentative {tent:?})"
                    );
                }
            }
            for (&(sa, va), &(sb, vb)) in a.iter().zip(&b) {
                prop_assert_eq!(sa, sb);
                let diverged_cleanly = va == LOST_VERSION
                    || vb == LOST_VERSION
                    || tentative[0].contains_key(&sa)
                    || tentative[1].contains_key(&sa);
                prop_assert!(
                    va == vb || diverged_cleanly,
                    "op {i} sector {sa}: silent divergence v{va} vs v{vb}"
                );
            }
        }
    }
    // The run must actually have exercised the fault machinery.
    for (name, ssd) in [("FTL", &ftl), ("Learned-FTL", &learned)] {
        let stats = ssd.array().stats();
        prop_assert!(
            stats.read_faults + stats.program_faults + stats.erase_faults > 0,
            "{name}: no faults injected: {stats:?}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn learned_reads_equal_baseline(ops in proptest::collection::vec(op_strategy(24_576), 1..300)) {
        run_parity(&ops)?;
    }

    /// Dense hammering of a small neighbourhood: maximum overwrite churn,
    /// so segments are punched and retrained constantly.
    #[test]
    fn learned_reads_equal_baseline_hammering(ops in proptest::collection::vec(
        (any::<bool>(), 0u64..64, 1u32..=16).prop_map(|(write, sector, sectors)| Op {
            write, sector, sectors
        }), 1..300))
    {
        run_parity(&ops)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn learned_integrity_under_faults(
        case in (1u64..1 << 48, proptest::collection::vec(op_strategy(24_576), 400..800))
    ) {
        run_faulty_parity(case.0, &case.1)?;
    }
}
