//! Property-based serial/pipelined equivalence: for arbitrary request
//! sequences, the pipelined map engine must be a pure issue-time
//! optimisation on every scheme — the same data served to the host (every
//! read returns the same write generations, so read-your-write ordering
//! holds), the same flash work per request, and the same cumulative
//! flash-side counters. Only per-request latencies may differ.

use aftl_core::request::HostRequest;
use aftl_core::scheme::SchemeKind;
use aftl_integration::{small_ssd, small_ssd_pipelined};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Op {
    write: bool,
    sector: u64,
    sectors: u32,
}

fn op_strategy(span: u64) -> impl Strategy<Value = Op> {
    (any::<bool>(), 0..span - 40, 1u32..=24).prop_map(|(write, sector, sectors)| Op {
        write,
        sector,
        sectors,
    })
}

/// Drive the same ops through a serial and a pipelined device of the same
/// scheme, comparing served payloads and flash work request by request and
/// the full flash-side counter set at the end.
fn run_pair(scheme: SchemeKind, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut serial = small_ssd(scheme);
    let mut piped = small_ssd_pipelined(scheme);
    for (i, op) in ops.iter().enumerate() {
        let req = if op.write {
            // Same id stream on both devices ⇒ same content stamps.
            let mut w = HostRequest::write(i as u64, op.sector, op.sectors);
            w.version = i as u64 + 1;
            w
        } else {
            HostRequest::read(i as u64, op.sector, op.sectors)
        };
        let a = serial.submit(&req).unwrap();
        let b = piped.submit(&req).unwrap();
        prop_assert!(
            a.served == b.served,
            "{}: op {i} served different data: {:?} vs {:?}",
            scheme.name(),
            a.served,
            b.served
        );
        prop_assert!(
            (a.flash_reads, a.flash_programs) == (b.flash_reads, b.flash_programs),
            "{}: op {i} did different flash work: {:?} vs {:?}",
            scheme.name(),
            (a.flash_reads, a.flash_programs),
            (b.flash_reads, b.flash_programs)
        );
    }
    let (sa, sb) = (serial.snapshot(), piped.snapshot());
    for (what, a, b) in [
        (
            "flash stats",
            format!("{:?}", sa.flash),
            format!("{:?}", sb.flash),
        ),
        (
            "scheme counters",
            format!("{:?}", sa.counters),
            format!("{:?}", sb.counters),
        ),
        (
            "cache stats",
            format!("{:?}", sa.cache),
            format!("{:?}", sb.cache),
        ),
    ] {
        prop_assert!(a == b, "{}: {what} diverged:\n  {a}\n  {b}", scheme.name());
    }
    Ok(())
}

/// Sustained overwrite past device capacity: GC must migrate both fully
/// page-mapped pages (whose resident sets are implicit in pipelined mode)
/// and sub-mapped pages, and the pipelined device must still shadow the
/// serial one op for op and counter for counter.
#[test]
fn gc_churn_pipelined_equals_serial() {
    for scheme in SchemeKind::ALL {
        let mut serial = small_ssd(scheme);
        let mut piped = small_ssd_pipelined(scheme);
        let spp = u64::from(serial.spp());
        let working_pages = serial.scheme().logical_pages() / 4;
        let writes = serial.array().geometry().total_pages() * 2;
        for i in 0..writes {
            // Co-prime stride over the working set; mostly full-page
            // writes (page-mapped), with a partial-write minority that
            // splits pages into sub-mapped state.
            let lpn = (i * 7919) % working_pages;
            let (sector, sectors) = if i % 5 == 0 {
                (lpn * spp + 1, (spp / 2) as u32)
            } else {
                (lpn * spp, spp as u32)
            };
            let mut w = HostRequest::write(i, sector, sectors);
            w.version = i + 1;
            let a = serial.submit(&w).unwrap();
            let b = piped.submit(&w).unwrap();
            assert_eq!(
                (a.flash_reads, a.flash_programs),
                (b.flash_reads, b.flash_programs),
                "{}: write {i} did different flash work",
                scheme.name()
            );
        }
        let (sa, sb) = (serial.snapshot(), piped.snapshot());
        assert!(
            sa.flash.erases > 0,
            "{}: churn must trigger GC",
            scheme.name()
        );
        assert_eq!(
            format!("{:?}", sa.flash),
            format!("{:?}", sb.flash),
            "{}: flash stats diverged after GC churn",
            scheme.name()
        );
        assert_eq!(
            format!("{:?}", sa.counters),
            format!("{:?}", sb.counters),
            "{}: scheme counters diverged after GC churn",
            scheme.name()
        );
        // Reads after churn must serve identical generations.
        for lpn in (0..working_pages).step_by(13) {
            let r = HostRequest::read(writes + lpn, lpn * spp, spp as u32);
            let a = serial.submit(&r).unwrap();
            let b = piped.submit(&r).unwrap();
            assert_eq!(a.served, b.served, "{}: read {lpn} diverged", scheme.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn baseline_pipelined_equals_serial(ops in proptest::collection::vec(op_strategy(4096), 1..250)) {
        run_pair(SchemeKind::Baseline, &ops)?;
    }

    #[test]
    fn mrsm_pipelined_equals_serial(ops in proptest::collection::vec(op_strategy(4096), 1..250)) {
        run_pair(SchemeKind::Mrsm, &ops)?;
    }

    #[test]
    fn across_pipelined_equals_serial(ops in proptest::collection::vec(op_strategy(4096), 1..250)) {
        run_pair(SchemeKind::Across, &ops)?;
    }

    /// Dense hammering of one page-boundary neighbourhood: maximum tpage
    /// reuse inside a batch, so the coalescing window is always hot.
    #[test]
    fn across_pipelined_boundary_hammering(ops in proptest::collection::vec(
        (any::<bool>(), 0u64..48, 1u32..=16).prop_map(|(write, sector, sectors)| Op {
            write, sector, sectors
        }), 1..300))
    {
        run_pair(SchemeKind::Across, &ops)?;
    }
}
