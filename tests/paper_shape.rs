//! The paper's qualitative results on a miniature end-to-end run: the
//! orderings of Figures 9-12 must hold (who wins), even at reduced scale.

use aftl_core::scheme::SchemeKind;
use aftl_sim::experiment::run_single_with;
use aftl_sim::{RunReport, SimConfig};

fn mini_runs() -> Vec<RunReport> {
    let mut spec = aftl_trace::LunPreset::Lun6.spec(0.06); // across-heavy lun
    spec.lun_bytes = 64 << 20;
    let trace = aftl_trace::VdiWorkload::new(spec).generate();
    let geometry = aftl_flash::GeometryBuilder::new()
        .channels(4)
        .chips_per_channel(2)
        .dies_per_chip(1)
        .planes_per_die(2)
        .blocks_per_plane(32)
        .pages_per_block(64)
        .page_bytes(8192)
        .build()
        .unwrap(); // 256 MiB
    SchemeKind::ALL
        .iter()
        .map(|&scheme| {
            let mut config = SimConfig::experiment(scheme, 8192);
            config.geometry = geometry;
            config.scheme_cfg = aftl_core::scheme::SchemeConfig::for_geometry(&geometry);
            // At this miniature scale the footprint-proportional default
            // would be a handful of translation pages; give the cache the
            // full baseline table instead (same regime as full scale).
            config.scheme_cfg.cache_bytes = config.scheme_cfg.logical_pages * 8;
            run_single_with(config, &trace).unwrap()
        })
        .collect()
}

#[test]
fn figure_orderings_hold() {
    let runs = mini_runs();
    let (ftl, mrsm, across) = (&runs[0], &runs[1], &runs[2]);

    // Fig 10(a): user flash writes — Across < FTL; MRSM pays map traffic.
    assert!(across.flash_writes().total() < ftl.flash_writes().total());
    assert!(
        mrsm.flash_writes().map > 0,
        "MRSM must show a Map component"
    );
    // At this miniature scale the cache is only a handful of translation
    // pages, so Across-FTL spills more than at full scale — but always far
    // less than MRSM.
    assert!(
        across.flash_writes().map_ratio() < mrsm.flash_writes().map_ratio() / 3.0,
        "Across-FTL map share ({:.3}) must stay well under MRSM's ({:.3})",
        across.flash_writes().map_ratio(),
        mrsm.flash_writes().map_ratio()
    );

    // Fig 10(b): flash reads — Across < FTL.
    assert!(across.flash_reads().total() < ftl.flash_reads().total());

    // Fig 11: erases — Across best.
    assert!(across.erases() < ftl.erases());
    assert!(across.erases() < mrsm.erases());

    // Fig 9(c): overall I/O time — Across clearly beats MRSM; vs FTL the
    // miniature scale is GC-episode-noise dominated, so allow slack here
    // (the full-scale fig9 binary shows the clean reduction).
    assert!(across.io_time_s() < mrsm.io_time_s());
    assert!(across.io_time_s() < ftl.io_time_s() * 1.15);

    // Fig 12(a): table sizes — FTL < Across < MRSM.
    assert!(ftl.mapping_table_bytes < across.mapping_table_bytes);
    assert!(across.mapping_table_bytes < mrsm.mapping_table_bytes);

    // Fig 12(b): DRAM accesses — MRSM far above the others.
    assert!(mrsm.dram_accesses() > 5 * ftl.dram_accesses());
    assert!(across.dram_accesses() < 2 * ftl.dram_accesses());

    // §4.2.2: Across-FTL cuts update-driven (RMW) reads vs FTL.
    assert!(across.counters.rmw_reads < ftl.counters.rmw_reads);
}

#[test]
fn across_statistics_populated() {
    let runs = mini_runs();
    let c = &runs[2].counters;
    assert!(c.across_direct_writes > 0);
    assert!(
        c.rollback_ratio() < 0.5,
        "rollbacks are a minority: {}",
        c.rollback_ratio()
    );
    let (d, p, u) = c.across_write_distribution();
    assert!((d + p + u - 1.0).abs() < 1e-9);
    assert!(u < d + p, "unprofitable merges are the smallest class");
}
