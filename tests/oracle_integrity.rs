//! End-to-end data-integrity tests: every read must return the newest
//! version of every sector, through across-page remapping, AMerge,
//! ARollback, read-modify-write, sub-page packing and GC migration.

use aftl_core::oracle::Oracle;
use aftl_core::scheme::SchemeKind;
use aftl_integration::{random_workload, small_ssd};

#[test]
fn baseline_serves_newest_data_under_pressure() {
    let mut ssd = small_ssd(SchemeKind::Baseline);
    let mut oracle = Oracle::new();
    let reads = random_workload(&mut ssd, &mut oracle, 0xBA5E, 12_000);
    assert!(reads > 3_000);
    assert!(ssd.array().stats().erases > 0, "test must exercise GC");
}

#[test]
fn across_ftl_serves_newest_data_under_pressure() {
    let mut ssd = small_ssd(SchemeKind::Across);
    let mut oracle = Oracle::new();
    let reads = random_workload(&mut ssd, &mut oracle, 0xAC05, 12_000);
    assert!(reads > 3_000);
    assert!(ssd.array().stats().erases > 0);
    let c = ssd.scheme().counters();
    // The workload must actually exercise the paper's machinery.
    assert!(
        c.across_direct_writes > 100,
        "direct writes: {}",
        c.across_direct_writes
    );
    assert!(
        c.profitable_amerge + c.unprofitable_amerge > 20,
        "merges: {} + {}",
        c.profitable_amerge,
        c.unprofitable_amerge
    );
    assert!(c.arollbacks > 0, "rollbacks must occur");
    assert!(c.across_direct_reads > 50);
}

#[test]
fn mrsm_serves_newest_data_under_pressure() {
    let mut ssd = small_ssd(SchemeKind::Mrsm);
    let mut oracle = Oracle::new();
    let reads = random_workload(&mut ssd, &mut oracle, 0x5u64, 12_000);
    assert!(reads > 3_000);
    assert!(ssd.array().stats().erases > 0);
}

#[test]
fn across_ftl_survives_many_seeds() {
    // Shorter runs, more seeds: catches path-dependent corruption.
    for seed in 0..8u64 {
        let mut ssd = small_ssd(SchemeKind::Across);
        let mut oracle = Oracle::new();
        random_workload(&mut ssd, &mut oracle, 1000 + seed, 3_000);
    }
}

#[test]
fn sequential_then_random_overwrite_all_schemes() {
    use aftl_core::request::HostRequest;
    for scheme in SchemeKind::ALL {
        let mut ssd = small_ssd(scheme);
        let mut oracle = Oracle::new();
        let spp = u64::from(ssd.spp());
        // Sequential fill of 200 pages.
        for lpn in 0..200u64 {
            let mut w = HostRequest::write(lpn, lpn * spp, spp as u32);
            oracle.stamp_write(&mut w);
            ssd.submit(&w).unwrap();
        }
        // Unaligned overwrites crossing every page boundary.
        for i in 0..199u64 {
            let mut w = HostRequest::write(1000 + i, i * spp + spp - 2, 4);
            oracle.stamp_write(&mut w);
            ssd.submit(&w).unwrap();
        }
        // Full-range readback in across-page sized chunks.
        for i in 0..199u64 {
            let r = HostRequest::read(5000 + i, i * spp + 2, spp as u32);
            let done = ssd.submit(&r).unwrap();
            let v = oracle.check_read(&r, &done.served);
            assert!(v.is_empty(), "{}: {:?}", scheme.name(), v);
        }
    }
}
