//! Property-based data integrity: arbitrary request sequences (sizes,
//! offsets, op mix) must always read back the newest data on every scheme.

use aftl_core::oracle::Oracle;
use aftl_core::request::HostRequest;
use aftl_core::scheme::SchemeKind;
use aftl_integration::small_ssd;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Op {
    write: bool,
    sector: u64,
    sectors: u32,
}

fn op_strategy(span: u64) -> impl Strategy<Value = Op> {
    (any::<bool>(), 0..span - 40, 1u32..=24).prop_map(|(write, sector, sectors)| Op {
        write,
        sector,
        sectors,
    })
}

fn run_ops(scheme: SchemeKind, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut ssd = small_ssd(scheme);
    let mut oracle = Oracle::new();
    for (i, op) in ops.iter().enumerate() {
        if op.write {
            let mut w = HostRequest::write(i as u64, op.sector, op.sectors);
            oracle.stamp_write(&mut w);
            ssd.submit(&w).unwrap();
        } else {
            let r = HostRequest::read(i as u64, op.sector, op.sectors);
            let done = ssd.submit(&r).unwrap();
            let v = oracle.check_read(&r, &done.served);
            prop_assert!(v.is_empty(), "{}: {:?}", scheme.name(), v);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn across_ftl_integrity(ops in proptest::collection::vec(op_strategy(4096), 1..300)) {
        run_ops(SchemeKind::Across, &ops)?;
    }

    #[test]
    fn baseline_integrity(ops in proptest::collection::vec(op_strategy(4096), 1..300)) {
        run_ops(SchemeKind::Baseline, &ops)?;
    }

    #[test]
    fn mrsm_integrity(ops in proptest::collection::vec(op_strategy(4096), 1..300)) {
        run_ops(SchemeKind::Mrsm, &ops)?;
    }

    /// Dense hammering of one page-boundary neighbourhood: the worst case
    /// for area conflicts, merges and rollbacks.
    #[test]
    fn across_ftl_boundary_hammering(ops in proptest::collection::vec(
        (any::<bool>(), 0u64..48, 1u32..=16).prop_map(|(write, sector, sectors)| Op {
            write, sector, sectors
        }), 1..400))
    {
        run_ops(SchemeKind::Across, &ops)?;
    }
}
