//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the shimmed [`serde::Value`] tree as standards-
//! compliant JSON. Supports everything the workspace's reports need:
//! compact and pretty printing, string escaping, `u128` integers, and a
//! recursive-descent parser for round-tripping reports in tests and
//! downstream tooling. Non-finite floats serialize as `null`, matching
//! real `serde_json`'s default behaviour.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Convert any serializable type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to an indented (2-space) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U128(u) => {
            let _ = write!(out, "{u}");
        }
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
                // Keep integral floats recognizable as floats.
                if f.fract() == 0.0
                    && f.abs() < 1e15
                    && !out.ends_with(['.', 'e'])
                    && !f.to_string().contains(['.', 'e', 'E'])
                {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}', got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']', got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.skip_ws();
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(Error(format!("expected string at byte {}", self.pos)));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad float {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(format!("bad integer {text:?}: {e}")))
        } else {
            text.parse::<u128>()
                .map(Value::U128)
                .map_err(|e| Error(format!("bad integer {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_render() {
        let v = Value::Map(vec![
            ("a".into(), Value::U128(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"x": [1, -2, 3.5], "s": "he\"llo", "t": true, "n": null}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.field("s").unwrap().as_str().unwrap(), "he\"llo");
        let re = parse_value(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn u128_and_escapes_survive() {
        let v = Value::Map(vec![(
            "big".into(),
            Value::U128(340_282_366_920_938_463_463_374_607_431_768_211_455),
        )]);
        let s = to_string(&v).unwrap();
        let re = parse_value(&s).unwrap();
        assert_eq!(v, re);
        let s2 = to_string(&Value::Str("line\nbreak\ttab".into())).unwrap();
        assert_eq!(
            parse_value(&s2).unwrap(),
            Value::Str("line\nbreak\ttab".into())
        );
    }

    #[test]
    fn floats_keep_a_decimal_marker() {
        assert_eq!(to_string(&Value::F64(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&Value::F64(f64::NAN)).unwrap(), "null");
    }
}
