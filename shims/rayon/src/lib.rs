//! Offline stand-in for `rayon`.
//!
//! Provides the one pattern this workspace uses — `slice.par_iter()
//! .map(f).collect::<C>()` — with genuine parallelism: the input is
//! chunked across `std::thread::scope` workers (one per available core,
//! capped by item count) and the mapped results are reassembled in input
//! order before the final `collect`, so any `FromIterator` target
//! (`Vec<_>`, `Result<Vec<_>, E>`, ...) behaves exactly as with rayon.
//! There is no work-stealing: experiment grids have a handful of
//! long-running, similarly-sized items, where static chunking is within
//! noise of a stealing scheduler.

/// Import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `par_iter()` entry point for slice-backed collections (`Vec`, arrays
/// via unsized coercion, slices).
pub trait IntoParallelRefIterator<'d> {
    /// Element type yielded by reference.
    type Item: Sync + 'd;

    /// A parallel view over `&self`.
    fn par_iter(&'d self) -> ParIter<'d, Self::Item>;
}

impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for [T] {
    type Item = T;

    fn par_iter(&'d self) -> ParIter<'d, T> {
        ParIter { slice: self }
    }
}

impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for Vec<T> {
    type Item = T;

    fn par_iter(&'d self) -> ParIter<'d, T> {
        ParIter { slice: self }
    }
}

impl<'d, T: Sync + 'd, const N: usize> IntoParallelRefIterator<'d> for [T; N] {
    type Item = T;

    fn par_iter(&'d self) -> ParIter<'d, T> {
        ParIter { slice: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'d, T> {
    slice: &'d [T],
}

impl<'d, T: Sync> ParIter<'d, T> {
    /// Map each element in parallel.
    pub fn map<U, F>(self, f: F) -> ParMap<'d, T, F>
    where
        U: Send,
        F: Fn(&'d T) -> U + Sync,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// Mapped parallel iterator; terminal `collect` runs the work.
pub struct ParMap<'d, T, F> {
    slice: &'d [T],
    f: F,
}

impl<'d, T: Sync, U: Send, F: Fn(&'d T) -> U + Sync> ParMap<'d, T, F> {
    /// Run the map across worker threads and collect in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        par_map_vec(self.slice, &self.f).into_iter().collect()
    }
}

fn par_map_vec<'d, T: Sync, U: Send, F: Fn(&'d T) -> U + Sync>(slice: &'d [T], f: &F) -> Vec<U> {
    let n = slice.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 || n <= 1 {
        return slice.iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut parts: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = slice
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            // Propagate worker panics to the caller, like rayon does.
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn maps_in_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collects_into_result() {
        let v = vec![1u32, 2, 3];
        let ok: Result<Vec<u32>, String> = v.par_iter().map(|x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap(), vec![2, 3, 4]);
        let err: Result<Vec<u32>, String> = v
            .par_iter()
            .map(|x| {
                if *x == 2 {
                    Err("boom".to_string())
                } else {
                    Ok(*x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn arrays_get_par_iter_via_coercion() {
        let arr = [1u8, 2, 3];
        let out: Vec<u8> = arr.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u8];
        let out: Vec<u8> = one.par_iter().map(|x| *x).collect();
        assert_eq!(out, vec![7]);
    }
}
