//! Offline stand-in for `criterion`.
//!
//! A self-contained timing harness with criterion's call-site surface:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size` / `throughput`, and `black_box`.
//! Instead of criterion's statistical machinery it reports the median of
//! `sample_size` timed samples (after one warm-up run), which is plenty
//! to catch the "did this PR regress the hot path" regressions the
//! ROADMAP cares about. Passing `--test` (as `cargo test --benches`
//! does) runs every closure exactly once for a smoke check.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Units for reporting relative throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing collector handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    smoke_test: bool,
}

impl Bencher {
    /// Time `f`, sampling it `sample_size` times after a warm-up call.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        if self.smoke_test {
            black_box(f());
            self.samples.push(Duration::ZERO);
            return;
        }
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn median(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn report(name: &str, samples: &mut [Duration], throughput: Option<Throughput>, smoke: bool) {
    if smoke {
        println!("{name:<40} ok (smoke test)");
        return;
    }
    let med = median(samples);
    let ns = med.as_nanos();
    match throughput {
        Some(Throughput::Elements(n)) if med.as_secs_f64() > 0.0 => {
            println!(
                "{name:<40} {ns:>12} ns/iter  {:>12.0} elem/s",
                n as f64 / med.as_secs_f64()
            );
        }
        Some(Throughput::Bytes(n)) if med.as_secs_f64() > 0.0 => {
            println!(
                "{name:<40} {ns:>12} ns/iter  {:>12.0} B/s",
                n as f64 / med.as_secs_f64()
            );
        }
        _ => println!("{name:<40} {ns:>12} ns/iter"),
    }
}

/// Top-level bench context (shim of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            smoke_test: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, self.smoke_test, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            smoke_test: self.smoke_test,
            _parent: self,
        }
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    smoke_test: bool,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        smoke_test,
    };
    f(&mut b);
    report(name, &mut b.samples, throughput, smoke_test);
}

/// A group of benchmarks sharing sample size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    smoke_test: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Attach a throughput annotation to subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.smoke_test, self.throughput, f);
        self
    }

    /// Finish the group (no-op in the shim; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Define a bench group function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from a list of bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 3,
            smoke_test: false,
        };
        let mut count = 0u32;
        b.iter(|| count += 1);
        assert_eq!(b.samples.len(), 3);
        assert_eq!(count, 4, "warm-up + samples");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
            smoke_test: true,
        };
        let mut count = 0u32;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn median_of_odd_samples() {
        let mut s = vec![
            Duration::from_nanos(30),
            Duration::from_nanos(10),
            Duration::from_nanos(20),
        ];
        assert_eq!(median(&mut s), Duration::from_nanos(20));
        assert_eq!(median(&mut []), Duration::ZERO);
    }
}
