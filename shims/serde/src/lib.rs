//! Offline stand-in for `serde`.
//!
//! The build container has no access to crates.io (see `ci.sh` and
//! README "Offline builds"), so the workspace ships minimal shims for the
//! handful of external crates it uses. This crate mirrors the subset of
//! serde's surface the repo relies on:
//!
//! * `#[derive(Serialize, Deserialize)]` on plain structs with named
//!   fields and on unit-variant enums (re-exported from `serde_derive`),
//! * the [`Serialize`] / [`Deserialize`] traits, defined over an explicit
//!   JSON-shaped [`Value`] tree instead of serde's visitor machinery.
//!
//! `serde_json` (also shimmed) renders/parses [`Value`] as real JSON, so
//! downstream code and report files look exactly as they would with the
//! real crates. The `#[serde(default)]` / `#[serde(default = "path")]`
//! field attributes are supported (used for manifest schema evolution);
//! other serde features (further attributes, borrowed data, non-unit enum
//! variants) fail at compile time in the derive.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree: the data model every [`Serialize`] /
/// [`Deserialize`] implementation round-trips through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (covers `u8`..`u128`).
    U128(u128),
    /// Signed integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, in insertion order.
    Map(Vec<(String, Value)>),
}

/// Error produced when converting a [`Value`] back into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl Value {
    /// Look up a field of an object; `Err` with a useful message otherwise.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{name}`"))),
            other => Err(Error(format!(
                "expected object with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Field lookup returning `None` when absent (object or not).
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `u128`, if non-negative integral.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::U128(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u128),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U128(u) => Some(*u as f64),
            Value::I64(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Conversion into the [`Value`] data model (shim for `serde::Serialize`).
pub trait Serialize {
    /// Render `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model (shim for
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U128(u128::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u128()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error(format!(concat!("expected ", stringify!($t), ", got {:?}"), v)))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, u128);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(i) => <$t>::try_from(*i).ok(),
                    Value::U128(u) => i64::try_from(*u).ok().and_then(|i| <$t>::try_from(i).ok()),
                    _ => None,
                }
                .ok_or_else(|| Error(format!(concat!("expected ", stringify!($t), ", got {:?}"), v)))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U128(*self as u128)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u128()
            .and_then(|u| usize::try_from(u).ok())
            .ok_or_else(|| Error(format!("expected usize, got {v:?}")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error(format!("expected f64, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error(format!("expected f32, got {v:?}")))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// ---- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error(format!("expected tuple array, got {v:?}")))?;
                let mut it = s.iter();
                Ok(($({
                    let _ = $n; // positional marker
                    $t::from_value(it.next().ok_or_else(|| Error("tuple too short".into()))?)?
                },)+))
            }
        }
    )+};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(Error(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(f64::from_value(&1.5f64.to_value()).unwrap() == 1.5);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u64, "x".to_string(), 2.5f64);
        assert_eq!(<(u64, String, f64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn field_lookup_errors_are_descriptive() {
        let v = Value::Map(vec![("a".into(), Value::U128(1))]);
        assert!(v.field("a").is_ok());
        let e = v.field("b").unwrap_err();
        assert!(e.0.contains("missing field `b`"));
    }
}
