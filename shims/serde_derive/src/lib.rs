//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the shimmed `serde` value-tree model, parsing the item's token stream by
//! hand (the real derive pulls in `syn`/`quote`, which are unavailable in
//! the offline build container). Two item shapes are supported — exactly
//! the shapes this workspace uses:
//!
//! * structs with named fields (no generics),
//! * enums whose variants are all unit variants.
//!
//! One field attribute is honoured: `#[serde(default)]` and
//! `#[serde(default = "path")]` make a struct field optional on
//! deserialization (missing fields fall back to `Default::default()` or
//! `path()`), matching real serde — this is what keeps older manifest
//! schema versions readable. Anything else produces a `compile_error!`
//! naming the unsupported construct, so misuse fails loudly at build time
//! rather than silently serializing wrong data.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A named struct field plus its `#[serde(default…)]` spec:
/// `None` = required, `Some(None)` = `Default::default()`,
/// `Some(Some(path))` = call `path()`.
struct Field {
    name: String,
    default: Option<Option<String>>,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    /// Single-field tuple struct (`struct Ppn(pub u64);`), serialized
    /// transparently as its inner value — matching real serde's newtype
    /// representation.
    Newtype {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<String>,
    },
}

/// Split a brace-group body into top-level comma-separated chunks,
/// treating `<...>` generic arguments as nesting (parens/brackets/braces
/// are already atomic `Group` tokens).
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strip leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(crate)`, ...) from a token chunk.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: `#` followed by a bracket group.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // Optional restriction group: pub(crate) / pub(super).
                if matches!(chunk.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    &chunk[i..]
}

/// Extract a field's `#[serde(default…)]` spec from its leading
/// attributes. Unsupported `#[serde(...)]` arguments are an error so the
/// shim keeps its fail-loudly contract.
fn field_serde_default(chunk: &[TokenTree]) -> Result<Option<Option<String>>, String> {
    let mut i = 0;
    while i + 1 < chunk.len() {
        let is_attr = matches!(
            (&chunk[i], &chunk[i + 1]),
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket
        );
        if !is_attr {
            break;
        }
        if let TokenTree::Group(g) = &chunk[i + 1] {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
            if is_serde {
                let args: Vec<TokenTree> = match inner.get(1) {
                    Some(TokenTree::Group(a)) if a.delimiter() == Delimiter::Parenthesis => {
                        a.stream().into_iter().collect()
                    }
                    _ => return Err("malformed `#[serde(...)]` attribute".into()),
                };
                match args.first() {
                    Some(TokenTree::Ident(d)) if d.to_string() == "default" => {
                        if args.len() == 1 {
                            return Ok(Some(None));
                        }
                        // `default = "path"`
                        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                            (args.get(1), args.get(2))
                        {
                            if eq.as_char() == '=' && args.len() == 3 {
                                let path = lit.to_string().trim_matches('"').to_string();
                                return Ok(Some(Some(path)));
                            }
                        }
                        return Err("unsupported `#[serde(default ...)]` form".into());
                    }
                    _ => {
                        return Err(
                            "serde shim supports only the `#[serde(default)]` field attribute"
                                .into(),
                        )
                    }
                }
            }
        }
        i += 2;
    }
    Ok(None)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility on the item itself.
    let rest = strip_attrs_and_vis(&tokens);
    let mut kind = None;
    let mut name = None;
    while i < rest.len() {
        match &rest[i] {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    if let Some(TokenTree::Ident(n)) = rest.get(i + 1) {
                        name = Some(n.to_string());
                    }
                    i += 2;
                    break;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    let kind = kind.ok_or("expected `struct` or `enum`")?;
    let name = name.ok_or("expected item name")?;
    // Generic items are out of scope for the shim.
    if matches!(rest.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive shim does not support generic item `{name}`"
        ));
    }
    // Tuple struct: the name is followed directly by a paren group.
    if kind == "struct" {
        if let Some(TokenTree::Group(g)) = rest.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                let arity = split_top_level(g.stream().into_iter().collect()).len();
                return if arity == 1 {
                    Ok(Item::Newtype { name })
                } else {
                    Err(format!(
                        "`{name}`: only single-field tuple structs are supported by the serde shim"
                    ))
                };
            }
        }
    }
    // The body is the next (and only) brace group.
    let body = rest[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .ok_or_else(|| format!("`{name}`: only braced structs/enums are supported"))?;

    let chunks = split_top_level(body.into_iter().collect());
    if kind == "struct" {
        let mut fields = Vec::new();
        for chunk in &chunks {
            let default = field_serde_default(chunk).map_err(|e| format!("`{name}`: {e}"))?;
            let chunk = strip_attrs_and_vis(chunk);
            match chunk.first() {
                Some(TokenTree::Ident(id)) if matches!(chunk.get(1), Some(TokenTree::Punct(p)) if p.as_char() == ':') =>
                {
                    fields.push(Field {
                        name: id.to_string(),
                        default,
                    });
                }
                _ => return Err(format!("`{name}`: only named struct fields are supported")),
            }
        }
        Ok(Item::Struct { name, fields })
    } else {
        let mut variants = Vec::new();
        for chunk in &chunks {
            let chunk = strip_attrs_and_vis(chunk);
            match chunk {
                [TokenTree::Ident(id)] => variants.push(id.to_string()),
                _ => {
                    return Err(format!(
                        "`{name}`: only unit enum variants are supported by the serde shim"
                    ))
                }
            }
        }
        Ok(Item::Enum { name, variants })
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive the shimmed `serde::Serialize` for named-field structs and
/// unit-variant enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(it) => it,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derive the shimmed `serde::Deserialize` for named-field structs and
/// unit-variant enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(it) => it,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let n = &f.name;
                    match &f.default {
                        None => format!(
                            "{n}: ::serde::Deserialize::from_value(v.field({n:?})?)?,"
                        ),
                        Some(None) => format!(
                            "{n}: match v.get({n:?}) {{\n\
                                 ::std::option::Option::Some(val) => ::serde::Deserialize::from_value(val)?,\n\
                                 ::std::option::Option::None => ::std::default::Default::default(),\n\
                             }},"
                        ),
                        Some(Some(path)) => format!(
                            "{n}: match v.get({n:?}) {{\n\
                                 ::std::option::Option::Some(val) => ::serde::Deserialize::from_value(val)?,\n\
                                 ::std::option::Option::None => {path}(),\n\
                             }},"
                        ),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str().ok_or_else(|| ::serde::Error::msg(\"expected enum string\"))? {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\n\
                                 \"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
