//! Offline stand-in for `rand` 0.9.
//!
//! Implements the subset of the rand API this workspace uses, with the
//! same call-site spelling: `SmallRng::seed_from_u64`, `Rng::random`,
//! `Rng::random_range` (half-open and inclusive integer ranges) and
//! `Rng::random_bool`. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same construction the real `SmallRng` uses on 64-bit
//! targets, chosen here for speed and reproducibility rather than
//! bit-for-bit stream compatibility. All experiment seeds are recorded in
//! run manifests, so reproducibility only requires this crate to be
//! deterministic, which it is.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, shimmed to the one constructor the repo uses.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits.
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardUniform for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardUniform for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, bound)` by widening multiply (no modulo bias
/// worth caring about at simulation scale; bound is never 0).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: raw bits are already uniform.
                    return StandardUniform::sample(rng);
                }
                lo + below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// The user-facing generator interface (blanket-implemented for every
/// [`RngCore`], matching rand 0.9's method names).
pub trait Rng: RngCore {
    /// Sample a value of any [`StandardUniform`] type.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from an integer range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// The "standard" generator; aliased to the same engine in the shim.
    pub type StdRng = SmallRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.random_range(1u32..=24);
            assert!((1..=24).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
