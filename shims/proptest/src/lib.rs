//! Offline stand-in for `proptest`.
//!
//! Covers the property-testing surface this workspace uses: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]` header),
//! [`Strategy`] with `prop_map`, range / tuple / `any::<bool>()` /
//! `collection::vec` strategies, [`prop_assert!`] and
//! [`prop_assert_eq!`]. Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated input's
//!   `Debug` rendering and the case's RNG seed instead of a minimized
//!   counterexample.
//! * **Deterministic seeding.** Case `i` of test `t` derives its seed
//!   from a hash of `t` and `i`, so failures reproduce without a
//!   persistence file.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test generator handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ (u64::from(case) << 32)))
    }
}

/// A failed test case (returned by `prop_assert!`-style macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias used by real-proptest code (`TestCaseError::Fail(reason)`).
    #[allow(non_snake_case)]
    pub fn Fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator (shrinking-free shim of proptest's `Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// `any::<T>()` strategy for types with a full-domain uniform draw.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform over the whole domain of `T`.
pub fn any<T: ArbitraryShim>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types `any::<T>()` supports in the shim.
pub trait ArbitraryShim: Debug + Sized {
    /// Draw one value covering the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryShim for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.random()
    }
}

impl ArbitraryShim for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.0.random()
    }
}

impl ArbitraryShim for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.0.random()
    }
}

impl<T: ArbitraryShim> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($t:ident . $n:tt),+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)` — a vector of generated elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.0.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drive `cases` generated inputs through `body`, panicking on the first
/// failure with the input's debug rendering (no shrinking).
pub fn run_cases<S: Strategy>(
    cfg: &ProptestConfig,
    strategy: S,
    test_name: &str,
    body: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    for case in 0..cfg.cases {
        let mut rng = TestRng::for_case(test_name, case);
        let value = strategy.generate(&mut rng);
        let rendered = format!("{value:?}");
        if let Err(e) = body(value) {
            panic!(
                "proptest {test_name}: case {case}/{} failed: {e}\ninput: {rendered}",
                cfg.cases
            );
        }
    }
}

/// Shim of proptest's main macro. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(pat in
/// strategy) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($arg:pat in $strategy:expr) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_cases(&config, $strategy, stringify!($name), |$arg| {
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
}

/// Import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = super::TestRng::for_case("x", 0);
        let s = (any::<bool>(), 0u64..100, 1u32..=4).prop_map(|(b, a, c)| (b, a, c));
        for _ in 0..200 {
            let (_, a, c) = s.generate(&mut rng);
            assert!(a < 100);
            assert!((1..=4).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_len_in_range() {
        let mut rng = super::TestRng::for_case("y", 1);
        let s = collection::vec(0u64..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_wires_config_and_assertions(x in 0u64..50) {
            prop_assert!(x < 50, "x was {x}");
            prop_assert_eq!(x.wrapping_add(0), x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_case_reports_input() {
        let cfg = ProptestConfig::with_cases(16);
        super::run_cases(&cfg, 0u64..10, "always_fails", |v| {
            prop_assert!(v > 100, "v too small: {v}");
            Ok(())
        });
    }
}
