//! The paper's §4.3 case study in miniature: how the across-page ratio and
//! Across-FTL's benefit change with the flash page size (4/8/16 KB).
//!
//! ```sh
//! cargo run --release -p aftl-integration --example page_size_study
//! ```

use aftl_core::scheme::SchemeKind;
use aftl_sim::experiment::run_single_with;
use aftl_sim::SimConfig;
use aftl_trace::{LunPreset, TraceStats, VdiWorkload};

fn main() {
    let mut spec = LunPreset::Lun1.spec(0.04);
    spec.lun_bytes = 128 << 20;
    let trace = VdiWorkload::new(spec).generate();

    println!(
        "{:>8}{:>14}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "page", "across ratio", "FTL io[s]", "Acr io[s]", "FTL flashW", "Acr flashW", "W saved"
    );
    for &page in &[4096u32, 8192, 16384] {
        let ratio = TraceStats::compute(&trace.records, page, 512).across_ratio();
        let geometry = aftl_flash::GeometryBuilder::new()
            .channels(4)
            .chips_per_channel(2)
            .dies_per_chip(1)
            .planes_per_die(2)
            .blocks_per_plane(128 * 8192 / page)
            .pages_per_block(64)
            .page_bytes(page)
            .build()
            .expect("geometry"); // constant 512 MiB across page sizes
        let run = |scheme| {
            let mut config = SimConfig::experiment(scheme, page);
            config.geometry = geometry;
            config.scheme_cfg = aftl_core::scheme::SchemeConfig::for_geometry(&geometry);
            run_single_with(config, &trace).expect("run")
        };
        let ftl = run(SchemeKind::Baseline);
        let across = run(SchemeKind::Across);
        println!(
            "{:>6}KB{:>14.3}{:>12.2}{:>12.2}{:>12}{:>12}{:>11.1}%",
            page / 1024,
            ratio,
            ftl.io_time_s(),
            across.io_time_s(),
            ftl.flash_writes().total(),
            across.flash_writes().total(),
            100.0
                * (1.0 - across.flash_writes().total() as f64 / ftl.flash_writes().total() as f64)
        );
    }
    println!("\nThe across-page ratio declines with page size, but Across-FTL's relative");
    println!("benefit tracks the ratio rather than vanishing (the paper's key §4.3 claim).");
}
