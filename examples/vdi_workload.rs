//! Replay a synthetic enterprise-VDI workload (the paper's lun6, scaled
//! down) against all three FTL schemes on a small device and print the
//! head-to-head comparison — a miniature of the paper's Figures 9-11.
//!
//! ```sh
//! cargo run --release -p aftl-integration --example vdi_workload
//! ```

use aftl_core::scheme::SchemeKind;
use aftl_sim::experiment::run_single_with;
use aftl_sim::SimConfig;
use aftl_trace::{LunPreset, TraceStats, VdiWorkload};

fn main() {
    // lun6 is the most across-heavy trace (27.5 % of requests).
    let mut spec = LunPreset::Lun6.spec(0.05);
    spec.lun_bytes = 256 << 20; // shrink the footprint with the device
    let trace = VdiWorkload::new(spec).generate();
    let stats = TraceStats::compute(&trace.records, 8192, 512);
    println!(
        "workload: {} requests, {:.1}% writes, {:.1}% across-page (8 KB pages)\n",
        stats.requests,
        stats.write_ratio() * 100.0,
        stats.across_ratio() * 100.0
    );

    let geometry = aftl_flash::GeometryBuilder::new()
        .channels(4)
        .chips_per_channel(2)
        .dies_per_chip(1)
        .planes_per_die(2)
        .blocks_per_plane(128)
        .pages_per_block(64)
        .page_bytes(8192)
        .build()
        .expect("geometry"); // 512 MiB

    println!(
        "{:<12}{:>10}{:>10}{:>12}{:>12}{:>10}",
        "scheme", "R lat ms", "W lat ms", "flash W", "flash R", "erases"
    );
    for scheme in SchemeKind::ALL {
        let mut config = SimConfig::experiment(scheme, 8192);
        config.geometry = geometry;
        config.scheme_cfg = aftl_core::scheme::SchemeConfig::for_geometry(&geometry);
        let r = run_single_with(config, &trace).expect("run");
        println!(
            "{:<12}{:>10.3}{:>10.3}{:>12}{:>12}{:>10}",
            r.scheme.name(),
            r.read_latency_ms(),
            r.write_latency_ms(),
            r.flash_writes().total(),
            r.flash_reads().total(),
            r.erases()
        );
    }
    println!("\nAcross-FTL services across-page requests with one flash operation;");
    println!("the baseline needs two, and MRSM pays for its sub-page mapping table.");
}
