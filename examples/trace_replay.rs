//! Replay a real block trace file through the simulator.
//!
//! Supports the SYSTOR '17 ("LUN") CSV format the paper uses and the
//! MSR-Cambridge format. Without an argument, a small demo trace is
//! written and replayed, so the example always runs.
//!
//! ```sh
//! cargo run --release -p aftl-integration --example trace_replay -- \
//!     /path/to/systor17.csv [--msr] [--lun <id>]
//! ```

use aftl_core::scheme::SchemeKind;
use aftl_sim::experiment::run_single_with;
use aftl_sim::SimConfig;
use aftl_trace::parser::{parse_msr, parse_systor};
use std::io::BufReader;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next();
    let mut msr = false;
    let mut lun_filter: Option<u32> = None;
    let rest: Vec<String> = args.collect();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--msr" => msr = true,
            "--lun" => lun_filter = it.next().and_then(|v| v.parse().ok()),
            other => panic!("unknown option {other}"),
        }
    }

    let trace = match path {
        Some(p) => {
            let file = std::fs::File::open(&p).expect("open trace file");
            let reader = BufReader::new(file);
            if msr {
                parse_msr(reader, &p, lun_filter).expect("parse MSR trace")
            } else {
                parse_systor(reader, &p, lun_filter).expect("parse SYSTOR trace")
            }
        }
        None => {
            // Self-contained demo: write a small SYSTOR-format file.
            let demo = demo_csv();
            let path = std::env::temp_dir().join("aftl_demo_trace.csv");
            std::fs::write(&path, demo).expect("write demo trace");
            println!(
                "(no trace given — replaying generated demo {})\n",
                path.display()
            );
            let file = std::fs::File::open(&path).expect("open demo");
            parse_systor(BufReader::new(file), "demo", None).expect("parse demo")
        }
    };

    let stats = aftl_trace::TraceStats::compute(&trace.records, 8192, 512);
    println!(
        "trace {}: {} requests, {:.1}% writes, {:.1}% across-page",
        trace.name,
        stats.requests,
        stats.write_ratio() * 100.0,
        stats.across_ratio() * 100.0
    );

    let geometry = aftl_flash::GeometryBuilder::new()
        .channels(4)
        .chips_per_channel(2)
        .dies_per_chip(1)
        .planes_per_die(2)
        .blocks_per_plane(64)
        .pages_per_block(64)
        .page_bytes(8192)
        .build()
        .expect("geometry");
    for scheme in SchemeKind::ALL {
        let mut config = SimConfig::experiment(scheme, 8192);
        config.geometry = geometry;
        config.scheme_cfg = aftl_core::scheme::SchemeConfig::for_geometry(&geometry);
        config.warmup.used_fraction = 0.5; // lighter aging for arbitrary traces
        let r = run_single_with(config, &trace).expect("replay");
        println!(
            "{:<12} io {:>9.3} s | flash W {:>8} R {:>8} | erases {:>5}",
            r.scheme.name(),
            r.io_time_s(),
            r.flash_writes().total(),
            r.flash_reads().total(),
            r.erases()
        );
    }
}

/// A few thousand SYSTOR-format lines exercising across-page behaviour.
fn demo_csv() -> String {
    let mut out = String::from("Timestamp,Response,IOType,LUN,Offset,Size\n");
    let mut t = 1_455_259_200.0f64;
    for i in 0u64..4000 {
        t += 0.002;
        let op = if i % 3 == 0 { "R" } else { "W" };
        // Mix of aligned 8K, across-page 6K at 1028K-style offsets, 4K.
        // A 4 MiB working set, revisited many times → realistic update
        // locality (across-page ranges get rewritten, AMerge triggers).
        let (off, size) = match i % 4 {
            0 => (i * 8192 % (4 << 20), 8192),
            1 => ((i * 8192 + 4096 + 1024) % (4 << 20), 6144),
            2 => ((i * 4096) % (4 << 20), 4096),
            _ => ((i * 8192 + 2048) % (4 << 20), 8192),
        };
        out.push_str(&format!("{t:.6},0.0001,{op},0,{off},{size}\n"));
    }
    out
}
