//! Quickstart: build an Across-FTL SSD, issue the paper's running example
//! — `write(1028K, 6K)` — and watch it get re-aligned onto a single flash
//! page, then read it back with one flash operation.
//!
//! ```sh
//! cargo run --release -p aftl-integration --example quickstart
//! ```

use aftl_core::request::HostRequest;
use aftl_core::scheme::SchemeKind;
use aftl_sim::{SimConfig, Ssd};

fn main() {
    // A small device (tiny geometry would do, but use an 8 KB-page one so
    // the sector arithmetic matches the paper's figures).
    let geometry = aftl_flash::GeometryBuilder::new()
        .channels(2)
        .chips_per_channel(2)
        .dies_per_chip(1)
        .planes_per_die(1)
        .blocks_per_plane(64)
        .pages_per_block(64)
        .page_bytes(8192)
        .build()
        .expect("geometry");
    let mut config = SimConfig::experiment(SchemeKind::Across, 8192);
    config.geometry = geometry;
    config.scheme_cfg = aftl_core::scheme::SchemeConfig::for_geometry(&geometry);
    config.warmup.used_fraction = 0.0; // fresh device for the demo
    config.track_content = true;

    let mut ssd = Ssd::new(config).expect("device");

    // The paper's Figure 5 example: write(1028K, 6K) spans LPN 128/129 yet
    // holds only 6 KB of data — an across-page request.
    let mut write = HostRequest::write(0, 1028 * 1024 / 512, 6 * 1024 / 512);
    write.version = 1;
    assert!(write.is_across_page(ssd.spp()));

    let done = ssd.submit(&write).expect("write serviced");
    println!("write(1028K, 6K):");
    println!(
        "  flash programs used : {} (a conventional FTL needs 2)",
        done.flash_programs
    );
    println!(
        "  latency             : {:.3} ms",
        done.latency_ns as f64 / 1e6
    );

    // Read it back: a direct across-page read — one flash read.
    let read = HostRequest::read(done.latency_ns, 1028 * 1024 / 512, 6 * 1024 / 512);
    let done = ssd.submit(&read).expect("read serviced");
    println!("read(1028K, 6K):");
    println!(
        "  flash reads used    : {} (a conventional FTL needs 2)",
        done.flash_reads
    );
    println!(
        "  all sectors version : {}",
        done.served.iter().all(|s| s.version == 1)
    );

    let c = ssd.scheme().counters();
    println!("\nAcross-FTL state:");
    println!("  live across-page areas : {}", c.live_across_areas);
    println!("  direct across writes   : {}", c.across_direct_writes);
    println!("  direct across reads    : {}", c.across_direct_reads);
    println!(
        "  mapping table          : {} bytes",
        ssd.scheme().mapping_table_bytes()
    );
}
