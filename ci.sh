#!/usr/bin/env sh
# Local CI gate — the same sequence .github/workflows/ci.yml runs.
#
# Offline/vendored-registry caveat: this workspace pins every external
# dependency (serde, serde_json, rand, rayon, proptest, criterion) to the
# local shim crates under shims/ via [workspace.dependencies] path entries,
# so the whole gate runs with no network and no crates.io registry. To build
# against the real crates instead, replace those path entries with version
# requirements; the shims expose (a subset of) the same APIs, so no source
# changes are needed.
#
# fmt and clippy are best-effort: the components are not installed in every
# toolchain image (rustup may be absent offline). When missing, they are
# skipped with a notice rather than failing the gate; build + test always run
# and always gate.

set -eu

say() { printf '\n==> %s\n' "$*"; }

say "cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all -- --check
else
    echo "rustfmt not installed; skipping (install via: rustup component add rustfmt)"
fi

say "cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping (install via: rustup component add clippy)"
fi

say "cargo build --release"
cargo build --release

say "cargo test"
cargo test -q

say "cargo doc -D warnings"
# Every public item in every crate is documented (#![warn(missing_docs)]
# workspace-wide); broken intra-doc links or rustdoc warnings fail here.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

say "fault-injection smoke"
# A short replay with nonzero fault rates must complete cleanly, actually
# inject faults, and lose no host data (retry ladder + relocation cover
# every injected failure at these rates).
smoke=target/ci_fault_smoke.json
cargo run --release -q -p aftl-bench --bin sim_cli -- \
    --scheme across --preset lun1 --scale 0.01 \
    --fault-seed 7 --read-fail-rate 0.01 \
    --program-fail-rate 0.002 --erase-fail-rate 0.002 \
    --json "$smoke" >/dev/null
grep -q '"read_fail_rate": 0.01' "$smoke" || { echo "fault config missing from manifest"; exit 1; }
if grep -q '"read_faults": 0$\|"read_faults": 0,' "$smoke"; then
    echo "smoke run injected no faults"; exit 1
fi
grep -q '"host_unrecoverable_reads": 0' "$smoke" || { echo "smoke run lost host data"; exit 1; }

say "host smoke (multi-tenant hosted run)"
# A 2-tenant WRR hosted run (~1k IOs) must complete, emit a current-schema
# manifest, and carry the per-tenant QoS section for both tenants.
host_smoke=target/ci_host_smoke.json
cargo run --release -q -p aftl-bench --bin sim_cli -- \
    --scheme across --preset lun1 --scale 0.0014 \
    --queues 2 --queue-depth 16 --arbitration wrr --tenant-weights 3,1 \
    --json "$host_smoke" >/dev/null
grep -q '"schema_version": 9' "$host_smoke" || { echo "hosted manifest is not schema v9"; exit 1; }
grep -q '"arbitration": "wrr"' "$host_smoke" || { echo "hosted manifest lost arbitration"; exit 1; }
for tenant in '"tenant0"' '"tenant1"'; do
    grep -q "$tenant" "$host_smoke" || { echo "hosted manifest missing QoS for $tenant"; exit 1; }
done

say "host bench smoke (BENCH_host manifest)"
host_bench=$PWD/target/ci_host_bench.json
rm -f "$host_bench"
cargo bench -q -p aftl-bench --bench host_throughput -- \
    --test --json "$host_bench" >/dev/null
[ -s "$host_bench" ] || { echo "host bench smoke wrote no manifest"; exit 1; }
grep -q '"schema_version": 1' "$host_bench" || { echo "host bench manifest has wrong schema_version"; exit 1; }
for scheme in '"FTL"' '"MRSM"' '"Across-FTL"'; do
    grep -q "$scheme" "$host_bench" || { echo "host bench manifest missing scheme $scheme"; exit 1; }
done

say "fleet smoke (2-device sharded run + N=1 parity)"
# A 2-device fleet run must complete, emit a schema-v7 manifest whose
# fleet section carries both devices, and the 1-device fleet must stay
# bit-identical to the hosted run (golden-digest parity test).
fleet_smoke=target/ci_fleet_smoke.json
cargo run --release -q -p aftl-bench --bin sim_cli -- \
    --scheme across --preset lun1 --scale 0.0014 \
    --devices 2 --json "$fleet_smoke" >/dev/null
grep -q '"schema_version": 9' "$fleet_smoke" || { echo "fleet manifest is not schema v9"; exit 1; }
grep -q '"devices": 2' "$fleet_smoke" || { echo "fleet manifest lost its topology section"; exit 1; }
grep -q '"d0/tenant0"' "$fleet_smoke" || { echo "fleet manifest missing per-device QoS rows"; exit 1; }
cargo test --release -q -p aftl-integration --test fig8_parity \
    fleet_single_device_matches_hosted_run_bit_for_bit >/dev/null \
    || { echo "1-device fleet diverged from the hosted run"; exit 1; }

say "fleet bench smoke (BENCH_fleet manifest)"
fleet_bench=$PWD/target/ci_fleet_bench.json
rm -f "$fleet_bench"
cargo bench -q -p aftl-bench --bench fleet_scaling -- \
    --test --json "$fleet_bench" >/dev/null
[ -s "$fleet_bench" ] || { echo "fleet bench smoke wrote no manifest"; exit 1; }
grep -q '"schema_version": 1' "$fleet_bench" || { echo "fleet bench manifest has wrong schema_version"; exit 1; }
for scheme in '"FTL"' '"MRSM"' '"Across-FTL"'; do
    grep -q "$scheme" "$fleet_bench" || { echo "fleet bench manifest missing scheme $scheme"; exit 1; }
done

say "gc tail bench smoke (BENCH_gc manifest)"
# The preemptible-vs-atomic GC tail bench must run end to end at smoke
# scale and emit a schema-valid BENCH_gc manifest. The p99.9 gate itself
# only applies at full scale; the smoke asserts the preemptible arm
# actually preempted and both arms ran GC episodes.
gc_bench=$PWD/target/ci_gc_bench.json
rm -f "$gc_bench"
cargo bench -q -p aftl-bench --bench gc_tail -- \
    --test --json "$gc_bench" >/dev/null
[ -s "$gc_bench" ] || { echo "gc tail bench smoke wrote no manifest"; exit 1; }
grep -q '"schema_version": 1' "$gc_bench" || { echo "gc bench manifest has wrong schema_version"; exit 1; }
for scheme in '"FTL"' '"MRSM"' '"Across-FTL"'; do
    grep -q "$scheme" "$gc_bench" || { echo "gc bench manifest missing scheme $scheme"; exit 1; }
done
grep -q '"preempt_episodes"' "$gc_bench" || { echo "gc bench manifest missing episode counters"; exit 1; }

say "pipeline smoke (pipelined replay manifest + parity)"
# A pipelined replay run must complete, emit a current-schema manifest
# with the map-engine counters actually ticking (the coalescing window
# must fire on a real trace), and the pipelined fig8 replay must stay
# flash-side bit-identical to the serial golden digest.
pipe_smoke=target/ci_pipe_smoke.json
cargo run --release -q -p aftl-bench --bin sim_cli -- \
    --scheme mrsm --preset lun1 --scale 0.01 \
    --pipeline --map-batch 8 --json "$pipe_smoke" >/dev/null
grep -q '"schema_version": 9' "$pipe_smoke" || { echo "pipelined manifest is not schema v9"; exit 1; }
grep -q '"pipeline"' "$pipe_smoke" || { echo "pipelined manifest lost its pipeline config"; exit 1; }
if grep -q '"coalesced_lookups": 0,' "$pipe_smoke"; then
    echo "pipelined run coalesced no lookups"; exit 1
fi
cargo test --release -q -p aftl-integration --test fig8_parity \
    pipelined >/dev/null \
    || { echo "pipelined replay diverged from the serial golden digest"; exit 1; }

say "learned smoke (predict-then-verify replay)"
# A learned-scheme replay with a DRAM-constrained mapping cache (two
# resident translation pages) must complete, emit a schema-v8 manifest,
# and actually serve reads from verified predictions — zero predict hits
# would mean the model path is dead weight.
learned_smoke=target/ci_learned_smoke.json
cargo run --release -q -p aftl-bench --bin sim_cli -- \
    --scheme learned --preset lun1 --scale 0.01 \
    --cache-bytes 16384 --json "$learned_smoke" >/dev/null
grep -q '"schema_version": 9' "$learned_smoke" || { echo "learned manifest is not schema v9"; exit 1; }
grep -q '"learned"' "$learned_smoke" || { echo "learned manifest lost its learned counters section"; exit 1; }
if grep -q '"predict_hits": 0,' "$learned_smoke"; then
    echo "learned run served no predicted reads"; exit 1
fi

say "learned bench smoke (BENCH_learned manifest)"
# The tracked map-read-traffic bench must run end to end at smoke scale
# (reduction gate off — a short trace barely misses the cache) and emit a
# schema-valid BENCH_learned manifest with all four schemes and a clean
# embedded read-parity section. The full-scale >= 20 % gate runs against
# the committed BENCH_learned.json in the bench lib tests.
learned_bench=$PWD/target/ci_learned_bench.json
rm -f "$learned_bench"
cargo bench -q -p aftl-bench --bench learned_traffic -- \
    --test --json "$learned_bench" >/dev/null
[ -s "$learned_bench" ] || { echo "learned bench smoke wrote no manifest"; exit 1; }
grep -q '"schema_version": 1' "$learned_bench" || { echo "learned bench manifest has wrong schema_version"; exit 1; }
for scheme in '"FTL"' '"MRSM"' '"Across-FTL"' '"Learned-FTL"'; do
    grep -q "$scheme" "$learned_bench" || { echo "learned bench manifest missing scheme $scheme"; exit 1; }
done
grep -q '"mismatches": 0' "$learned_bench" || { echo "learned bench parity found mismatches"; exit 1; }
grep -q '"oracle_violations": 0' "$learned_bench" || { echo "learned bench parity violated the oracle"; exit 1; }

say "recovery smoke (seeded power cut -> rebuild -> oracle)"
# A crash-armed run must cut mid-workload, power-cycle, rebuild the
# mapping from the OOB journal (checkpoint + delta here), and pass the
# acknowledged-write oracle: a schema-v9 manifest whose recovery section
# reports zero lost sectors and no torn exposure.
rec_smoke=target/ci_recovery_smoke.json
cargo run --release -q -p aftl-bench --bin sim_cli -- \
    --scheme across --preset lun1 --scale 0.01 \
    --crash-at 2000 --recover --checkpoint-every 100 \
    --json "$rec_smoke" >/dev/null
grep -q '"schema_version": 9' "$rec_smoke" || { echo "crash manifest is not schema v9"; exit 1; }
grep -q '"recovery"' "$rec_smoke" || { echo "crash manifest lost its recovery section"; exit 1; }
grep -q '"mode": "checkpoint"' "$rec_smoke" || { echo "crash run did not rebuild from the checkpoint"; exit 1; }
grep -q '"lost_sectors": 0' "$rec_smoke" || { echo "recovery lost acknowledged sectors"; exit 1; }
grep -q '"torn_exposed": false' "$rec_smoke" || { echo "recovery exposed a torn request"; exit 1; }

say "recovery bench smoke (BENCH_recovery manifest)"
# The scan-vs-checkpoint rebuild bench must run end to end at smoke
# scale and emit a schema-valid BENCH_recovery manifest with clean
# oracle verdicts on every arm. The >= 2x rebuild-read gate itself runs
# against the committed BENCH_recovery.json in the bench lib tests.
rec_bench=$PWD/target/ci_recovery_bench.json
rm -f "$rec_bench"
cargo bench -q -p aftl-bench --bench recovery_time -- \
    --test --json "$rec_bench" >/dev/null
[ -s "$rec_bench" ] || { echo "recovery bench smoke wrote no manifest"; exit 1; }
grep -q '"schema_version": 1' "$rec_bench" || { echo "recovery bench manifest has wrong schema_version"; exit 1; }
for scheme in '"FTL"' '"MRSM"' '"Across-FTL"' '"Learned-FTL"'; do
    grep -q "$scheme" "$rec_bench" || { echo "recovery bench manifest missing scheme $scheme"; exit 1; }
done
if grep -q '"lost_sectors": [^0]' "$rec_bench"; then
    echo "recovery bench lost acknowledged sectors"; exit 1
fi
grep -q '"torn_exposed": true' "$rec_bench" && { echo "recovery bench exposed a torn request"; exit 1; }

say "bench smoke (replay manifest, serial + pipelined pairs)"
# The tracked replay bench must run end to end at smoke scale and emit a
# schema-valid BENCH_replay manifest (the binary refuses to write an
# invalid one; here we assert the file landed and looks like schema v2
# with a serial/pipelined pair per scheme). The bench's own --test mode
# additionally gates the freshly measured MRSM pipeline speedup; the
# full-scale 1.15x gate runs against the committed BENCH_replay.json in
# the bench lib tests.
bench_smoke=$PWD/target/ci_bench_smoke.json
rm -f "$bench_smoke"
cargo bench -q -p aftl-bench --bench sim_throughput -- \
    --test --json "$bench_smoke" >/dev/null
[ -s "$bench_smoke" ] || { echo "bench smoke wrote no manifest"; exit 1; }
grep -q '"schema_version": 2' "$bench_smoke" || { echo "bench manifest has wrong schema_version"; exit 1; }
grep -q '"pipelined"' "$bench_smoke" || { echo "bench manifest missing pipelined timings"; exit 1; }
for scheme in '"FTL"' '"MRSM"' '"Across-FTL"'; do
    grep -q "$scheme" "$bench_smoke" || { echo "bench manifest missing scheme $scheme"; exit 1; }
done

say "CI gate passed"
